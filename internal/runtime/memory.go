// Package runtime implements the leap.Memory runtime — the byte-addressable
// paged memory that fuses the predictor, prefetchers, page cache and the
// real remote-memory substrate behind one fault path (internal/paging). The
// root package leap re-exports it; use leap.Open.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"leap/internal/control"
	"leap/internal/core"
	"leap/internal/datapath"
	"leap/internal/metrics"
	"leap/internal/pagecache"
	"leap/internal/pagemap"
	"leap/internal/paging"
	"leap/internal/prefetch"
	"leap/internal/remote"
	"leap/internal/sim"
)

// Memory is the byte-addressable remote-memory runtime: the paper's full
// stack fused into one object. Local memory is a bounded set of page
// frames (the cgroup budget); everything beyond it lives on the remote
// substrate (RemoteHost: rendezvous-placed, replicated slabs reached over
// in-process or TCP transports). An access to a non-local page takes the
// same fault path as the simulator — the internal/paging engine shared with
// Simulate — so the majority-trend predictor watches the fault stream,
// prefetch windows go out to the real host through the async ticket engine
// (doorbell-batched wire frames), and the adaptive page cache decides
// eviction, while real page images move underneath.
//
// Time is virtual: every fault charges the modeled data-path + fabric
// latency to the runtime's clock (WithClock shares it), so hit ratios,
// latency percentiles and prefetch accuracy are reproducible bit-for-bit
// from the options — while the bytes, placement, replication and failover
// are real.
//
// Memory is safe for concurrent use: ReadAt, WriteAt, Get, Flush and Stats
// may be called from arbitrary goroutines. One mutex serializes the fault
// path (predictor, cache, residency, clock); a full miss drops the lock for
// the remote fetch when WithConcurrency allows, registering a single-flight
// entry so concurrent faults on the same page wait for one fetch while
// faults on other pages proceed in parallel. The paper's multi-process
// deployment (§4.1) maps onto Client handles: each logical client id gets
// its own predictor over its own fault stream, while all clients share the
// page cache, the residency budget and the remote host. Two caveats: the
// slice returned by Memory.Get aliases the live frame table and is safe
// only for single-goroutine use (Client.Get copies instead), and a clock
// shared via WithClock must not be touched while operations are in flight.
type Memory struct {
	// mu serializes the fault path: engine, residency, frame table, clock.
	// It is dropped across single-flight demand fetches (see fetchDemand)
	// and never held across a Client-visible return.
	mu sync.Mutex

	eng  *paging.Engine[*Memory]
	res  *paging.Resident
	host *remote.Host
	// ownHost marks a self-built in-process host (closed by Close; a host
	// supplied via WithRemoteHost is the caller's to close).
	ownHost bool
	clock   *sim.Clock
	qdepth  int
	// conc is the WithConcurrency bound: the number of demand-miss fetches
	// allowed to overlap outside the lock. conc <= 1 keeps every fetch
	// under the lock — the strictly serialized PR-4 execution order.
	conc     int
	fetching int // demand fetches currently running unlocked

	// frames holds the real bytes of every local page: resident pages plus
	// prefetched pages parked in the cache and in flight.
	frames    *pagemap.Map[*frame]
	frameFree *frame
	// written tracks pages with a remote image (including writes still
	// queued in the host's dirty buffer): only those are fetched from the
	// host; everything else reads as zeros without touching the wire.
	written *pagemap.Map[struct{}]
	// faulting is the set of pages currently traversing the fault path: the
	// eager cache policy frees their cache entries mid-fault (the page
	// table takes ownership), and the eviction callback must not drop their
	// frames. More than one entry only under concurrent faults.
	faulting *pagemap.Map[struct{}]
	// demand is the single-flight table: a page being demand-fetched with
	// the lock dropped maps to the entry concurrent faulters wait on.
	demand *pagemap.Map[*demandFetch]

	tickets     []*remote.Ticket
	ticketPages []core.PageID

	// err is the first unrecoverable store failure (a writeback no replica
	// accepted); every subsequent operation reports it.
	err error

	// plane is the attached control plane (nil without WithControlPlane).
	// planeEvery is the virtual-time tick cadence and planeNext the next due
	// tick (planeNext is guarded by m.mu; the tick itself runs with m.mu
	// released — lock order is m.mu → plane.mu → host.mu, and the tick path
	// enters at plane.mu so plane actions may mutate the host freely).
	plane      *control.Plane
	planeEvery sim.Duration
	planeNext  sim.Time
	// planeTicks / planeActs count ticks run and successful actions by kind.
	// Atomics, not m.mu: Stats must not order m.mu against the plane's locks.
	planeTicks atomic.Int64
	planeActs  [8]atomic.Int64
	// slabPages sizes agents the plane provisions on the private cluster.
	slabPages int

	// lastLatency/lastSerial snapshot the most recent fault's total and
	// CPU-serial latency for the closed-loop concurrency model (LastFault);
	// meaningful only when one goroutine drives the Memory.
	lastLatency sim.Duration
	lastSerial  sim.Duration

	// cacheStats0 snapshots cache counters at measurement start, so
	// accuracy/coverage cover only the recorded phase (mirrors the
	// simulator's warmup handling).
	cacheStats0 pagecache.Stats

	cAccesses     *int64
	cFaults       *int64
	cResidentHits *int64
	cDemandWaits  *int64
}

// demandFetch is one single-flight demand read in progress with the lock
// dropped; done closes once the page is mapped in (or the fetch failed).
type demandFetch struct {
	done chan struct{}
}

// frame is one 4KB local page frame. Frames are pooled; data stays at
// PageSize.
type frame struct {
	data  []byte
	dirty bool
	next  *frame // free list
}

// DefaultConcurrency is the default WithConcurrency bound: how many
// demand-miss fetches may overlap outside the fault-path lock.
const DefaultConcurrency = 8

// memOptions collects Open's functional options.
type memOptions struct {
	pf         prefetch.Prefetcher
	host       *remote.Host
	capacity   int
	queueDepth int
	conc       int
	clock      *sim.Clock
	seed       uint64
	agents     int
	slabPages  int
	planeCfg   *control.Config
	planeEvery sim.Duration
	retry      remote.RetryPolicy
	retrySet   bool
}

// Option configures Open.
type Option func(*memOptions)

// WithPrefetcher selects the prefetching policy consulted on every fault
// (default: the Leap majority-trend predictor). Build baselines with
// NewPrefetcher("readahead"), NewPrefetcher("none"), etc.
func WithPrefetcher(p prefetch.Prefetcher) Option { return func(o *memOptions) { o.pf = p } }

// WithRemoteHost runs the Memory over an existing host — typically one
// dialed to TCP agents (cmd/leapagent). The caller keeps ownership: Close
// flushes but does not close it. Without this option Open builds a private
// three-agent in-process cluster with two-way replication.
func WithRemoteHost(h *remote.Host) Option { return func(o *memOptions) { o.host = h } }

// WithCacheCapacity sets the local memory budget in pages — the cgroup
// limit resident frames plus the prefetch cache are charged against
// (default 1024 pages = 4MB).
func WithCacheCapacity(pages int) Option { return func(o *memOptions) { o.capacity = pages } }

// WithQueueDepth bounds the async ticket engine's doorbell batches: up to
// this many page operations ride one wire frame per agent, and eviction
// writebacks accumulate behind a dirty backlog of the same bound (default
// 8; 1 degenerates to one synchronous round trip per page).
func WithQueueDepth(depth int) Option { return func(o *memOptions) { o.queueDepth = depth } }

// WithConcurrency bounds how many demand-miss fetches may run outside the
// fault-path lock at once (default DefaultConcurrency). Size it to the
// number of goroutines expected to drive the Memory. 1 pins every fetch
// under the lock — the fault path becomes strictly serialized, executing
// exactly like the pre-concurrency runtime; a single-goroutine caller makes
// identical decisions at every setting.
func WithConcurrency(n int) Option { return func(o *memOptions) { o.conc = n } }

// WithClock shares a virtual clock with the runtime (for virtual-time
// tests: fault latencies are charged to it, so a test can interleave its
// own events deterministically). Default: a private clock starting at 0.
func WithClock(c *sim.Clock) Option { return func(o *memOptions) { o.clock = c } }

// WithSeed seeds the latency models (fabric jitter, data-path stage draws).
// Equal seeds and equal access sequences replay bit-identically.
func WithSeed(seed uint64) Option { return func(o *memOptions) { o.seed = seed } }

// Open builds a Memory runtime. With no options it is the full Leap stack
// of the paper over a private in-process remote-memory cluster: lean data
// path, eager cache eviction, majority-trend prefetching, async
// doorbell-batched remote I/O.
func Open(opts ...Option) (*Memory, error) {
	o := memOptions{
		capacity:   1024,
		queueDepth: remote.DefaultQueueDepth,
		conc:       DefaultConcurrency,
		seed:       42,
		agents:     3,
		slabPages:  1024,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.capacity <= 0 {
		return nil, fmt.Errorf("leap: cache capacity %d, need > 0", o.capacity)
	}
	if o.queueDepth <= 0 {
		o.queueDepth = 1
	}
	if o.conc <= 0 {
		o.conc = DefaultConcurrency
	}
	if o.retrySet && o.host != nil {
		return nil, fmt.Errorf("leap: WithRetryPolicy configures the private in-process cluster; set RemoteHostConfig.Retry (and SetTimeSource) on the host passed to WithRemoteHost instead")
	}
	m := &Memory{
		clock:     o.clock,
		qdepth:    o.queueDepth,
		conc:      o.conc,
		slabPages: o.slabPages,
		frames:    pagemap.New[*frame](o.capacity),
		written:   pagemap.New[struct{}](0),
		faulting:  pagemap.New[struct{}](0),
		demand:    pagemap.New[*demandFetch](0),
	}
	if m.clock == nil {
		m.clock = &sim.Clock{}
	}
	m.host = o.host
	if m.host == nil {
		transports := make([]remote.Transport, o.agents)
		for i := range transports {
			tr := remote.Transport(remote.NewInProc(remote.NewAgent(o.slabPages, 0)))
			if o.planeCfg != nil {
				// With a plane attached the private cluster's transports get
				// fault-injection wrappers: pass-through while healthy (bit-
				// identical to the bare transport), observable by the plane,
				// and reachable via Host.Transports for chaos tests.
				tr = remote.NewFaultTransport(i, tr, nil)
			}
			transports[i] = tr
		}
		h, err := remote.NewHost(remote.HostConfig{
			SlabPages:  o.slabPages,
			Replicas:   2,
			QueueDepth: o.queueDepth,
			Seed:       o.seed,
			Retry:      o.retry,
		}, transports)
		if err != nil {
			return nil, err
		}
		m.host = h
		m.ownHost = true
		if o.retrySet {
			// Ticket deadlines measure virtual time off the runtime clock.
			// The clock is only read on the fault path (under m.mu), where
			// the async engine runs, so the raw accessor is race-free.
			h.SetTimeSource(m.clock.Now)
		}
	}
	pf := o.pf
	if pf == nil {
		pf = prefetch.NewLeap(core.Config{})
	}
	// The full Leap stack of §4: lean data path, eager cache eviction, and
	// (unless overridden) majority-trend prefetching — the same
	// configuration Simulate's SystemDVMMLeap preset builds, so a Memory
	// run and a simulator run over one trace make identical decisions.
	m.eng = paging.New[*Memory](paging.Config{
		Path:        datapath.Config{Kind: datapath.Lean},
		CachePolicy: pagecache.EvictEager,
		Prefetcher:  pf,
		QueueDepth:  o.queueDepth,
		Seed:        o.seed,
	})
	m.res = paging.NewResident(o.capacity)
	m.res.Limit = int64(o.capacity)
	m.eng.OnInsert = func(mm *Memory) { mm.res.Charged++ }
	m.eng.OnIssue = (*Memory).fetchPrefetches
	m.eng.OnEvict = (*Memory).evictResident
	m.eng.Cache().OnEvict = m.cacheEvicted
	m.cAccesses = m.eng.Counters.Handle("accesses")
	m.cFaults = m.eng.Counters.Handle("faults")
	m.cResidentHits = m.eng.Counters.Handle("resident_hits")
	m.cDemandWaits = m.eng.Counters.Handle("demand_waits")
	if o.planeCfg != nil {
		m.attachPlane(*o.planeCfg, o.planeEvery)
	}
	return m, nil
}

// Now reports the runtime's virtual time.
func (m *Memory) Now() sim.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock.Now()
}

// LastFault reports the virtual-time latency of the most recent fault —
// total, and the CPU-serial share that cannot overlap other goroutines'
// faults (data-path traversal, cache work; the rest is waitable wire time).
// A resident hit reports (0, 0). Meaningful only while a single goroutine
// drives the Memory: the closed-loop concurrency model (internal/load)
// reads it per operation.
func (m *Memory) LastFault() (total, serial sim.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLatency, m.lastSerial
}

// SetRecording toggles metric collection — populate/warmup phases run with
// recording off, exactly like the simulator's warmup. Turning recording on
// snapshots cache counters so Stats covers only the measured phase. Bytes
// always move; only accounting pauses.
func (m *Memory) SetRecording(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if on && !m.eng.Recording() {
		m.cacheStats0 = m.eng.Cache().Stats()
	}
	m.eng.SetRecording(on)
}

// Host exposes the remote substrate (stats, repair, rebalance hooks). The
// Host is itself safe for concurrent use.
func (m *Memory) Host() *remote.Host { return m.host }

// Prefetcher exposes the configured prefetcher (e.g. to read per-client
// predictor statistics off a *prefetch.Leap). Prefetcher state is guarded
// by the runtime's fault-path lock: inspect it only while no operations are
// in flight.
func (m *Memory) Prefetcher() prefetch.Prefetcher { return m.eng.Prefetcher() }

// newFrame takes a frame off the free list, or allocates one.
func (m *Memory) newFrame() *frame {
	f := m.frameFree
	if f == nil {
		return &frame{data: make([]byte, remote.PageSize)}
	}
	m.frameFree = f.next
	f.next = nil
	f.dirty = false
	return f
}

// freeFrame returns a frame to the pool.
func (m *Memory) freeFrame(f *frame) {
	f.next = m.frameFree
	m.frameFree = f
}

// zeroFrame clears a recycled frame's bytes.
func zeroFrame(f *frame) {
	clear(f.data)
}

// cacheEvicted keeps the cgroup charge and the frame table in step with the
// page cache: a cache entry leaving uncharges it, and its frame is released
// unless the page is (or is becoming) resident.
func (m *Memory) cacheEvicted(page core.PageID) {
	m.res.Charged--
	if m.faulting.Contains(page) || m.res.Contains(page) {
		return
	}
	if f, ok := m.frames.Get(page); ok {
		m.frames.Delete(page)
		m.freeFrame(f)
	}
}

// evictResident is the engine's residency-eviction hook: the victim's bytes
// are written back to the remote host if dirty (through the async ticket
// engine, behind the bounded dirty backlog), and its frame is released
// unless the page cache still references the page. The async engine copies
// the bytes on enqueue, so the frame can be recycled immediately.
func (m *Memory) evictResident(page core.PageID) {
	f, ok := m.frames.Get(page)
	if !ok {
		return
	}
	if f.dirty {
		m.written.Put(page, struct{}{})
		m.host.WritePageAsync(page, f.data)
		f.dirty = false
		if m.host.PendingWrites() >= m.qdepth {
			m.latchWriteback(m.host.Flush())
		}
	}
	if !m.eng.Cache().Contains(page) {
		m.frames.Delete(page)
		m.freeFrame(f)
	}
}

// latchWriteback records err as the Memory's permanent store failure —
// unless it is a read-op failure surfaced through Flush. Flush drains read
// and write tickets alike, and a failed prefetch read is handled per-ticket
// (the prefetch is abandoned, a later demand access refetches): only a
// writeback no replica accepted means acked application data is gone.
func (m *Memory) latchWriteback(err error) {
	if err == nil || m.err != nil || isReadOpError(err) {
		return
	}
	m.err = fmt.Errorf("leap: writeback failed: %w", err)
}

// isReadOpError reports whether err is a ticket-engine read failure.
func isReadOpError(err error) bool {
	var oe *remote.OpError
	return errors.As(err, &oe) && oe.Op == remote.OpRead
}

// fetchPrefetches is the engine's prefetch-issue hook: the window's pages
// get frames and their real bytes are fetched from the host through the
// async ticket engine — one doorbell flush for the whole window. Pages with
// no remote image materialize as zeros without touching the wire. A page
// whose batched fetch fails is abandoned (the in-flight entry is
// cancelled): no synchronous retry happens here, because a wire round trip
// with m.mu held would head-of-line-block every client behind one slow
// replica. A later demand access refetches the page under the overlap
// budget, where a slow replica delays only its own faulter.
func (m *Memory) fetchPrefetches(pages []core.PageID) {
	m.tickets = m.tickets[:0]
	m.ticketPages = m.ticketPages[:0]
	for _, page := range pages {
		f := m.newFrame()
		m.frames.Put(page, f)
		if m.written.Contains(page) {
			m.tickets = append(m.tickets, m.host.ReadPageAsync(page, f.data))
			m.ticketPages = append(m.ticketPages, page)
		} else {
			zeroFrame(f)
		}
	}
	if len(m.tickets) == 0 {
		return
	}
	// Read outcomes are per-ticket (checked below). Flush also drains queued
	// eviction writebacks; only a write-op failure — acked application data
	// no replica accepted — may poison the Memory.
	m.latchWriteback(m.host.Flush())
	for i, t := range m.tickets {
		if t.Err() == nil {
			continue
		}
		page := m.ticketPages[i]
		if f, ok := m.frames.Get(page); ok {
			m.frames.Delete(page)
			m.freeFrame(f)
		}
		m.eng.CancelPrefetch(page)
	}
}

// fetchDemand reads pg's real image from the host into f.data on a full
// miss. When the overlap budget (WithConcurrency) has room, the fault-path
// lock is dropped for the read: a single-flight entry is registered so
// concurrent faults on pg wait for this fetch (and the engine's prefetch
// dedup is told to skip pg), while faults on other pages proceed in
// parallel. At the budget — or at WithConcurrency(1) — the read runs with
// the lock held, strictly serialized.
func (m *Memory) fetchDemand(pg core.PageID, f *frame) error {
	if m.conc <= 1 || m.fetching >= m.conc {
		return m.host.ReadPage(pg, f.data)
	}
	d := &demandFetch{done: make(chan struct{})}
	m.demand.Put(pg, d)
	m.eng.BlockPrefetch(pg)
	m.fetching++
	m.mu.Unlock()
	err := m.host.ReadPage(pg, f.data)
	m.mu.Lock()
	m.fetching--
	m.eng.UnblockPrefetch(pg)
	m.demand.Delete(pg)
	close(d.done)
	return err
}

// page runs one access by client pid to pg through the shared fault path
// and returns its frame. This is the runtime counterpart of the simulator's
// step: flush landed prefetches, check residency, fault through
// cache/in-flight/miss, consult the client's predictor, map the page in.
// Callers hold m.mu; the returned frame is valid only until the lock is
// released.
func (m *Memory) page(pid prefetch.PID, pg core.PageID) (*frame, error) {
	if m.err != nil {
		return nil, m.err
	}
	if pg < 0 {
		return nil, fmt.Errorf("leap: negative page %d", pg)
	}
	recording := m.eng.Recording()
	if recording {
		*m.cAccesses++
	}
	first := true
	var now sim.Time
	for {
		now = m.clock.Now()
		m.eng.FlushArrivals(now)

		// Resident: no fault.
		if m.res.Touch(pg) {
			if recording && first {
				*m.cResidentHits++
			}
			m.lastLatency, m.lastSerial = 0, 0
			f, _ := m.frames.Get(pg)
			return f, nil
		}
		if first {
			if recording {
				*m.cFaults++
			}
			first = false
		}

		// Single-flight: another goroutine is demand-fetching pg. Wait for
		// its map-in and retry from the residency check. The waited access
		// is accounted as a hit (it pays no full miss of its own) and is
		// not re-recorded with the predictor.
		d, ok := m.demand.Get(pg)
		if !ok {
			break
		}
		if recording {
			*m.cDemandWaits++
		}
		m.mu.Unlock()
		<-d.done
		m.mu.Lock()
		if m.err != nil {
			return nil, m.err
		}
	}

	m.faulting.Put(pg, struct{}{})
	latency, miss := m.eng.Fault(pid, 0, pg, now)
	m.lastLatency, m.lastSerial = latency, m.eng.LastFaultSerial
	if miss {
		// Full miss: fetch the real bytes (zeros when the page has no
		// remote image — memory never written reads as zero).
		f := m.newFrame()
		if m.written.Contains(pg) {
			if m.plane != nil {
				// Remotely served faults are the plane's hot-page frequency
				// feed: natural hotspots drive ReplicateHot.
				m.plane.ObserveRead(pg)
			}
			if err := m.fetchDemand(pg, f); err != nil {
				// Unwind the half-taken fault. The engine has already
				// recorded the miss and charged the device model, so the
				// clock must still advance by the fault's latency — device
				// queue occupancy and the latency histogram stay truthful —
				// but OnAccess/MapIn are skipped: there are no bytes to map,
				// and the page stays non-resident so a retry after the
				// outage heals faults through cleanly.
				m.freeFrame(f)
				m.faulting.Delete(pg)
				m.clock.Advance(latency)
				return nil, fmt.Errorf("leap: page %d unreachable: %w", pg, err)
			}
		} else {
			zeroFrame(f)
		}
		m.frames.Put(pg, f)
	}
	m.clock.Advance(latency)
	now = m.clock.Now()
	m.eng.OnAccess(m, m.res, pid, 0, pg, miss, now)
	m.eng.MapIn(m, m.res, 0, pg, now)
	m.faulting.Delete(pg)
	f, ok := m.frames.Get(pg)
	if !ok {
		// Unreachable by construction: every path above installed a frame.
		return nil, fmt.Errorf("leap: page %d lost its frame", pg)
	}
	return f, m.err
}

// Get faults page pg in (prefetching around it) and returns its 4KB frame.
// The returned slice is a read-only view into the runtime's frame table,
// valid until the next Memory operation — which makes it safe only when one
// goroutine drives the Memory. Concurrent callers should use Client.Get
// (which copies) or ReadAt; use WriteAt to mutate pages.
func (m *Memory) Get(pg core.PageID) ([]byte, error) {
	m.mu.Lock()
	f, err := m.page(0, pg)
	now, due := m.planeDueLocked()
	m.mu.Unlock()
	if due {
		m.tickPlane(now)
	}
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// getInto faults pg in on behalf of pid and copies its frame into dst while
// the lock is held — the concurrency-safe form of Get.
func (m *Memory) getInto(pid prefetch.PID, pg core.PageID, dst []byte) error {
	m.mu.Lock()
	f, err := m.page(pid, pg)
	if err == nil {
		copy(dst, f.data)
	}
	now, due := m.planeDueLocked()
	m.mu.Unlock()
	if due {
		m.tickPlane(now)
	}
	return err
}

// ReadAt implements io.ReaderAt over the paged address space: it fills p
// from offset off, faulting (and prefetching) page by page. Never-written
// memory reads as zeros; there is no EOF. Safe for concurrent use; each
// page is read atomically, a multi-page span is not.
func (m *Memory) ReadAt(p []byte, off int64) (int, error) { return m.readAt(0, p, off) }

// readAt is ReadAt on behalf of client pid. Bytes are copied out while the
// fault-path lock is held, page by page.
func (m *Memory) readAt(pid prefetch.PID, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("leap: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		m.mu.Lock()
		f, err := m.page(pid, core.PageID(off/remote.PageSize))
		if err != nil {
			m.mu.Unlock()
			return n, err
		}
		c := copy(p[n:], f.data[off%remote.PageSize:])
		now, due := m.planeDueLocked()
		m.mu.Unlock()
		if due {
			m.tickPlane(now)
		}
		n += c
		off += int64(c)
	}
	return n, nil
}

// WriteAt implements io.WriterAt: it copies p into the paged address space
// at offset off. Partially covered pages fault in first (read-modify-write);
// dirty frames are written back to the remote host on eviction through the
// async ticket engine. Safe for concurrent use; each page is written
// atomically, a multi-page span is not.
func (m *Memory) WriteAt(p []byte, off int64) (int, error) { return m.writeAt(0, p, off) }

// writeAt is WriteAt on behalf of client pid.
func (m *Memory) writeAt(pid prefetch.PID, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("leap: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		m.mu.Lock()
		f, err := m.page(pid, core.PageID(off/remote.PageSize))
		if err != nil {
			m.mu.Unlock()
			return n, err
		}
		c := copy(f.data[off%remote.PageSize:], p[n:])
		f.dirty = true
		now, due := m.planeDueLocked()
		m.mu.Unlock()
		if due {
			m.tickPlane(now)
		}
		n += c
		off += int64(c)
	}
	return n, nil
}

// Flush drains every queued asynchronous remote operation (the host's
// ticket queues and the engine's writeback backlog) and reports the first
// store failure, if any. Resident dirty frames stay local — they are
// memory, not a write-through cache — and reach the host on eviction.
func (m *Memory) Flush() error {
	m.mu.Lock()
	err := m.flushLocked()
	now, due := m.planeDueLocked()
	m.mu.Unlock()
	if due {
		m.tickPlane(now)
	}
	return err
}

// flushLocked is Flush with m.mu held.
func (m *Memory) flushLocked() error {
	m.eng.FlushWriteback(0, m.clock.Now())
	if err := m.host.Flush(); err != nil && m.err == nil && !isReadOpError(err) {
		m.err = fmt.Errorf("leap: flush failed: %w", err)
	}
	return m.err
}

// Close flushes queued remote operations and, when the runtime owns its
// in-process cluster, closes the host. A host supplied via WithRemoteHost
// is left open for its owner.
func (m *Memory) Close() error {
	m.mu.Lock()
	err := m.flushLocked()
	m.mu.Unlock()
	if m.ownHost {
		if cerr := m.host.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats aggregates the runtime's fault-path accounting. Counts are
// cumulative since Open.
type Stats struct {
	// Accesses is every page touch; ResidentHits paid no fault.
	Accesses, ResidentHits int64
	// Faults is every non-resident access; CacheHits landed on a completed
	// prefetch, InflightHits on one still in flight, Misses went to the
	// host (or materialized a zero page).
	Faults, CacheHits, InflightHits, Misses int64
	// DemandWaits counts faults that waited on another goroutine's
	// in-flight demand fetch of the same page instead of re-issuing it —
	// the single-flight dedup at work. Always 0 single-threaded.
	DemandWaits int64
	// PrefetchIssued counts pages the prefetcher requested; Swapouts counts
	// resident evictions.
	PrefetchIssued, Swapouts int64
	// HitRatio is the fraction of accesses that did not pay a full miss.
	HitRatio float64
	// Accuracy is prefetch hits / prefetch issued; Coverage is prefetch
	// hits / faults (§3.1 definitions).
	Accuracy, Coverage float64
	// Latency summarizes the virtual-time fault latency distribution.
	Latency metrics.Summary
	// Host is the remote substrate's accounting (wire frames, failovers,
	// repairs).
	Host remote.HostStats
	// Control is the attached control plane's view of the cluster and the
	// actions it has taken (zero-valued without WithControlPlane).
	Control ControlStats
}

// Stats reports the runtime's cumulative accounting. Safe to call
// concurrently with operations; the snapshot is internally consistent.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	c := &m.eng.Counters
	cs := m.eng.Cache().Stats()
	s := Stats{
		Accesses:       c.Get("accesses"),
		ResidentHits:   c.Get("resident_hits"),
		Faults:         c.Get("faults"),
		CacheHits:      c.Get("cache_hits"),
		InflightHits:   c.Get("inflight_hits"),
		Misses:         c.Get("cache_misses"),
		DemandWaits:    c.Get("demand_waits"),
		PrefetchIssued: c.Get("prefetch_issued"),
		Swapouts:       c.Get("swapouts"),
		Latency:        m.eng.FaultLatency.Summarize(),
		// Host stats are taken under m.mu too (m.mu → host.mu is the
		// ordering everywhere), so the whole snapshot is one instant.
		Host: m.host.Stats(),
	}
	cacheStats0 := m.cacheStats0
	m.mu.Unlock()
	// The plane's accessors take its own lock; reading them after m.mu is
	// released keeps the lock order acyclic (and the counters are atomics).
	s.Control = m.controlStats()
	if s.Accesses > 0 {
		s.HitRatio = 1 - float64(s.Misses)/float64(s.Accesses)
	}
	prefetchHits := cs.PrefetchHits - cacheStats0.PrefetchHits + s.InflightHits
	if s.PrefetchIssued > 0 {
		s.Accuracy = float64(prefetchHits) / float64(s.PrefetchIssued)
	}
	if s.Faults > 0 {
		s.Coverage = float64(prefetchHits) / float64(s.Faults)
	}
	return s
}
