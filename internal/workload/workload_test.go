package workload

import (
	"math"
	"testing"

	"leap/internal/analysis"
	"leap/internal/core"
	"leap/internal/sim"
)

func collect(g Generator, n int) []core.PageID {
	out := make([]core.PageID, n)
	for i := range out {
		out[i] = g.Next().Page
	}
	return out
}

func TestSequentialWraps(t *testing.T) {
	g := NewSequential(5, 1)
	got := collect(g, 12)
	want := []core.PageID{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %d, want %d", i, got[i], want[i])
		}
	}
	if g.Name() != "sequential" || g.Pages() != 5 || g.AccessesPerOp() != 1 {
		t.Fatal("metadata wrong")
	}
}

func TestStridePattern(t *testing.T) {
	g := NewStride(100, 10, 1)
	got := collect(g, 11)
	for i := 0; i < 10; i++ {
		if got[i] != core.PageID(i*10) {
			t.Fatalf("access %d = %d, want %d", i, got[i], i*10)
		}
	}
	if got[10] != 0 {
		t.Fatalf("wrap = %d, want 0", got[10])
	}
	if g.Name() != "stride-10" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestStrideZeroDefaultsToOne(t *testing.T) {
	g := NewStride(10, 0, 1)
	got := collect(g, 3)
	if got[1] != got[0]+1 {
		t.Fatal("zero stride not defaulted")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewUniform(1000, 7)
	for _, p := range collect(g, 10000) {
		if p < 0 || p >= 1000 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestUniformCoversSpace(t *testing.T) {
	g := NewUniform(16, 3)
	seen := map[core.PageID]bool{}
	for _, p := range collect(g, 2000) {
		seen[p] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform covered %d of 16 pages", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(100000, 0.99, 5)
	counts := map[core.PageID]int{}
	const n = 200000
	for _, p := range collect(g, n) {
		counts[p]++
	}
	// Strong skew: the top page should hold a few percent of accesses, and
	// the distinct-page count far below n.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if float64(maxC)/n < 0.01 {
		t.Fatalf("zipf top page only %.4f of accesses — not skewed", float64(maxC)/n)
	}
	if len(counts) > n/2 {
		t.Fatalf("zipf produced %d distinct pages in %d accesses — too uniform", len(counts), n)
	}
}

func TestZipfBounds(t *testing.T) {
	g := NewZipf(512, 1.0, 11) // s=1 exercises the log-CDF branch
	for _, p := range collect(g, 20000) {
		if p < 0 || p >= 512 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestZipfRankRange(t *testing.T) {
	rng := sim.NewRNG(13)
	z := newZipfInv(1000, 0.99)
	for i := 0; i < 100000; i++ {
		k := z.rank(rng)
		if k < 1 || k > 1000 {
			t.Fatalf("rank %d out of [1,1000]", k)
		}
	}
}

func TestAppDeterminism(t *testing.T) {
	a := collect(NewApp(PowerGraphProfile(), 99), 5000)
	b := collect(NewApp(PowerGraphProfile(), 99), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("app stream diverges at %d", i)
		}
	}
	c := collect(NewApp(PowerGraphProfile(), 100), 5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatal("different seeds produced near-identical streams")
	}
}

func TestAppPagesInRange(t *testing.T) {
	for _, p := range Profiles() {
		g := NewApp(p, 42)
		for _, pg := range collect(g, 20000) {
			if pg < 0 || int64(pg) >= p.TotalPages {
				t.Fatalf("%s: page %d outside working set %d", p.AppName, pg, p.TotalPages)
			}
		}
	}
}

func TestAppMetadata(t *testing.T) {
	for _, p := range Profiles() {
		g := NewApp(p, 1)
		if g.Name() != p.AppName || g.Pages() != p.TotalPages {
			t.Fatalf("%s metadata mismatch", p.AppName)
		}
		if g.AccessesPerOp() < 1 {
			t.Fatalf("%s AccessesPerOp = %d", p.AppName, g.AccessesPerOp())
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("powergraph"); !ok {
		t.Fatal("powergraph missing")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("bogus app found")
	}
}

// coldFaults extracts the cold-region access stream — a proxy for the fault
// stream a 50%-memory run produces (hot pages stay resident).
func coldFaults(p Profile, n int, seed uint64) []core.PageID {
	g := NewApp(p, seed)
	hot := int64(float64(p.TotalPages) * p.HotFraction)
	var out []core.PageID
	for len(out) < n {
		a := g.Next()
		if int64(a.Page) >= hot {
			out = append(out, a.Page)
		}
	}
	return out
}

// TestFigure3PatternMixes validates the generators against the paper's
// Figure 3 shape requirements.
func TestFigure3PatternMixes(t *testing.T) {
	const n = 60000

	pg := coldFaults(PowerGraphProfile(), n, 1)
	np := coldFaults(NumPyProfile(), n, 2)
	vd := coldFaults(VoltDBProfile(), n, 3)
	mc := coldFaults(MemcachedProfile(), n, 4)

	// (1) Strict sequential fraction decays as the window grows (Fig. 3's
	// left-to-right decline) for the pattern-rich apps.
	for _, tc := range []struct {
		name   string
		faults []core.PageID
	}{{"powergraph", pg}, {"numpy", np}, {"voltdb", vd}} {
		w2 := analysis.ClassifyStrict(tc.faults, 2)
		w8 := analysis.ClassifyStrict(tc.faults, 8)
		if !(w8.Sequential < w2.Sequential) {
			t.Errorf("%s: strict seq did not decay: W2=%.3f W8=%.3f",
				tc.name, w2.Sequential, w8.Sequential)
		}
	}

	// (2) Majority detection at window 8 recovers more sequential windows
	// than strict matching (the paper: 11.3–29.7% more).
	for _, tc := range []struct {
		name   string
		faults []core.PageID
	}{{"powergraph", pg}, {"numpy", np}} {
		strict := analysis.ClassifyStrict(tc.faults, 8)
		maj := analysis.ClassifyMajority(tc.faults, 8)
		gain := maj.Sequential - strict.Sequential
		if gain < 0.05 {
			t.Errorf("%s: majority gain at W8 = %.3f, want >= 0.05", tc.name, gain)
		}
	}

	// (3) Memcached is overwhelmingly irregular (paper: ~96% other under
	// majority detection).
	mcMaj := analysis.ClassifyMajority(mc, 8)
	if mcMaj.Other < 0.85 {
		t.Errorf("memcached majority other = %.3f, want >= 0.85", mcMaj.Other)
	}

	// (4) VoltDB is majority-irregular (paper: 69% of accesses irregular).
	vdMaj := analysis.ClassifyMajority(vd, 8)
	if vdMaj.Other < 0.45 {
		t.Errorf("voltdb majority other = %.3f, want >= 0.45", vdMaj.Other)
	}

	// (5) PowerGraph and NumPy have meaningful detectable patterns.
	pgMaj := analysis.ClassifyMajority(pg, 8)
	if pgMaj.Sequential+pgMaj.Stride < 0.35 {
		t.Errorf("powergraph detectable = %.3f, want >= 0.35", pgMaj.Sequential+pgMaj.Stride)
	}
}

func TestThinkTimesPositive(t *testing.T) {
	for _, p := range Profiles() {
		g := NewApp(p, 9)
		var sum float64
		for i := 0; i < 5000; i++ {
			a := g.Next()
			if a.Think <= 0 {
				t.Fatalf("%s: non-positive think time", p.AppName)
			}
			sum += float64(a.Think)
		}
		mean := sum / 5000
		if math.Abs(mean-float64(p.ThinkMean))/float64(p.ThinkMean) > 0.25 {
			t.Errorf("%s: think mean %.0fns, want ~%dns", p.AppName, mean, p.ThinkMean)
		}
	}
}
