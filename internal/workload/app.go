package workload

import (
	"leap/internal/core"
	"leap/internal/sim"
)

// segClass is the type of the current cold-region segment.
type segClass int

const (
	segSequential segClass = iota
	segStride
	segRandom
)

// Profile parameterizes an application model: a hot region that stays
// resident, plus cold-region traffic built from sequential, strided, and
// random segments. The per-application values below were calibrated so the
// Figure 3 classifier reproduces the paper's measured pattern mixes.
type Profile struct {
	// AppName is the workload identifier.
	AppName string
	// TotalPages is the full working set (the paper's apps use 9–38.2GB;
	// scaled down proportionally for simulation speed).
	TotalPages int64
	// HotFraction of the working set is hot; HotProb of accesses go there.
	HotFraction float64
	HotProb     float64
	// Segment class weights for cold traffic (need not sum to 1).
	SeqWeight, StrideWeight, RandWeight float64
	// Mean segment lengths (accesses) per class.
	SeqLen, StrideLen, RandLen int
	// StrideSet holds candidate stride values for strided segments.
	StrideSet []int64
	// NoiseProb is the chance that any cold access is replaced by a one-off
	// out-of-order page near the segment cursor, without disturbing the
	// cursor — the multi-threading-style short-term irregularity the paper
	// credits majority voting with tolerating (§3.2.1). The deltas it
	// injects are wild (breaking strict sequentiality tests) but spatially
	// local (within NoiseSpan pages of the cursor).
	NoiseProb float64
	// NoiseSpan bounds the distance of noise accesses from the cursor
	// (default 64 when zero).
	NoiseSpan int64
	// ThinkMean is the mean per-access CPU time.
	ThinkMean sim.Duration
	// OpsEvery is accesses per application-level operation.
	OpsEvery int
}

// App generates accesses from a Profile.
type App struct {
	p     Profile
	rng   *sim.RNG
	think sim.Dist

	hotPages int64
	hotInv   zipfInv // cached zipf invariants for the hot-region draw

	class   segClass
	remain  int   // accesses left in current segment
	cursor  int64 // cold-region position (absolute page)
	stride  int64
	zipfSrc *sim.RNG // popularity stream for hot accesses
}

// NewApp instantiates profile p with the given seed.
func NewApp(p Profile, seed uint64) *App {
	rng := sim.NewRNG(seed)
	a := &App{
		p:        p,
		rng:      rng,
		think:    sim.Exponential{MeanVal: p.ThinkMean, Floor: 100 * sim.Nanosecond},
		hotPages: int64(float64(p.TotalPages) * p.HotFraction),
		zipfSrc:  rng.Fork(0xbeef),
	}
	if a.hotPages > 0 {
		a.hotInv = newZipfInv(a.hotPages, 1.01)
	}
	a.startSegment()
	return a
}

// Name implements Generator.
func (a *App) Name() string { return a.p.AppName }

// Pages implements Generator.
func (a *App) Pages() int64 { return a.p.TotalPages }

// AccessesPerOp implements Generator.
func (a *App) AccessesPerOp() int {
	if a.p.OpsEvery < 1 {
		return 1
	}
	return a.p.OpsEvery
}

// coldSpan reports the cold region's page range [hotPages, TotalPages).
func (a *App) coldSpan() int64 { return a.p.TotalPages - a.hotPages }

func (a *App) startSegment() {
	total := a.p.SeqWeight + a.p.StrideWeight + a.p.RandWeight
	u := a.rng.Float64() * total
	mean := 1
	switch {
	case u < a.p.SeqWeight:
		a.class = segSequential
		a.stride = 1
		mean = a.p.SeqLen
	case u < a.p.SeqWeight+a.p.StrideWeight:
		a.class = segStride
		a.stride = a.p.StrideSet[a.rng.Intn(len(a.p.StrideSet))]
		mean = a.p.StrideLen
	default:
		a.class = segRandom
		mean = a.p.RandLen
	}
	if mean < 1 {
		mean = 1
	}
	// Geometric-ish segment length around the mean, at least 2.
	a.remain = 2 + int(float64(mean)*a.rng.ExpFloat64())
	// New segments start at a fresh cold location.
	a.cursor = a.hotPages + a.rng.Int63n(a.coldSpan())
}

func (a *App) coldNext() core.PageID {
	if a.remain <= 0 {
		a.startSegment()
	}
	a.remain--
	if a.p.NoiseProb > 0 && a.rng.Float64() < a.p.NoiseProb {
		// One-off out-of-order access ahead of the cursor (a sibling thread
		// running ahead in the same region); the segment cursor is
		// unaffected. Forward skew matches partitioned multi-threaded scans:
		// peers process later portions of the same range.
		span := a.p.NoiseSpan
		if span <= 12 {
			span = 64
		}
		off := 12 + a.rng.Int63n(span-11)
		p := a.cursor + off
		if p < a.hotPages {
			p = a.hotPages
		}
		if p >= a.p.TotalPages {
			p = a.p.TotalPages - 1
		}
		return core.PageID(p)
	}
	switch a.class {
	case segSequential, segStride:
		p := a.cursor
		a.cursor += a.stride
		if a.cursor >= a.p.TotalPages || a.cursor < a.hotPages {
			a.startSegment()
		}
		return core.PageID(p)
	default:
		return core.PageID(a.hotPages + a.rng.Int63n(a.coldSpan()))
	}
}

// Next implements Generator.
func (a *App) Next() Access {
	think := a.think.Sample(a.rng)
	if a.hotPages > 0 && a.rng.Float64() < a.p.HotProb {
		rank := a.hotInv.rank(a.zipfSrc)
		return Access{Page: core.PageID(rank - 1), Think: think}
	}
	return Access{Page: a.coldNext(), Think: think}
}

// The four application profiles. Working sets are scaled to simulation size
// (1 page = 4KB; 2^18 pages = 1GB) while preserving the paper's relative
// footprints (PowerGraph/Twitter ≈ 9GB … NumPy ≈ 38.2GB) and Figure 3
// pattern mixes.

// PowerGraphProfile models graph analytics on the Twitter graph: long
// sequential edge-list scans, strided vertex-array walks, and a meaningful
// share of irregular gather traffic. Figure 3 shows it with the highest
// sequential fraction and a visible stride share.
func PowerGraphProfile() Profile {
	return Profile{
		AppName:      "powergraph",
		TotalPages:   96 * 1024, // scaled working set
		HotFraction:  0.30,
		HotProb:      0.40,
		SeqWeight:    0.60,
		StrideWeight: 0.30,
		RandWeight:   0.10,
		SeqLen:       900,
		StrideLen:    450,
		RandLen:      5,
		StrideSet:    []int64{7, 13, 21, 33},
		NoiseProb:    0.06,
		ThinkMean:    2500 * sim.Nanosecond,
		OpsEvery:     1,
	}
}

// NumPyProfile models the matrix product of §5.3.2: two operand matrices
// swept in long rows — overwhelmingly sequential faults with short strided
// column walks.
func NumPyProfile() Profile {
	return Profile{
		AppName:      "numpy",
		TotalPages:   128 * 1024,
		HotFraction:  0.10,
		HotProb:      0.15,
		SeqWeight:    0.80,
		StrideWeight: 0.12,
		RandWeight:   0.08,
		SeqLen:       800,
		StrideLen:    160,
		RandLen:      4,
		StrideSet:    []int64{25, 50},
		NoiseProb:    0.05,
		ThinkMean:    1000 * sim.Nanosecond,
		OpsEvery:     1,
	}
}

// VoltDBProfile models TPC-C: short transactions over B-tree-resident
// tables. The paper measures 69% of its remote accesses as irregular, with
// modest sequential runs from scans; operations are transactions.
func VoltDBProfile() Profile {
	return Profile{
		AppName:      "voltdb",
		TotalPages:   80 * 1024,
		HotFraction:  0.25,
		HotProb:      0.45,
		SeqWeight:    0.20,
		StrideWeight: 0.11,
		RandWeight:   0.69,
		SeqLen:       48,
		StrideLen:    24,
		RandLen:      12,
		StrideSet:    []int64{5, 9},
		NoiseProb:    0.08,
		ThinkMean:    900 * sim.Nanosecond,
		OpsEvery:     12, // accesses per transaction
	}
}

// MemcachedProfile models the Facebook ETC workload: zipf-popular keys
// hashed over the heap — almost entirely irregular faults (Figure 3 puts
// ~96% of its windows in "other").
func MemcachedProfile() Profile {
	return Profile{
		AppName:      "memcached",
		TotalPages:   112 * 1024,
		HotFraction:  0.20,
		HotProb:      0.55,
		SeqWeight:    0.03,
		StrideWeight: 0.01,
		RandWeight:   0.96,
		SeqLen:       4,
		StrideLen:    4,
		RandLen:      24,
		StrideSet:    []int64{2},
		NoiseProb:    0.02,
		ThinkMean:    700 * sim.Nanosecond,
		OpsEvery:     2, // accesses per GET/SET
	}
}

// Profiles returns the four paper applications in presentation order.
func Profiles() []Profile {
	return []Profile{
		PowerGraphProfile(),
		NumPyProfile(),
		VoltDBProfile(),
		MemcachedProfile(),
	}
}

// Names reports the application model names in presentation order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.AppName
	}
	return names
}

// ByName returns the profile with the given AppName.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.AppName == name {
			return p, true
		}
	}
	return Profile{}, false
}
