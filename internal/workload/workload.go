// Package workload generates the page-access streams driving every
// experiment: the two microbenchmark patterns of §2.2 (Sequential,
// Stride-10) and synthetic models of the paper's four applications
// (PowerGraph, NumPy, VoltDB, Memcached).
//
// The application models are hot/cold segment mixtures calibrated against
// the paper's Figure 3, which measures — per application, at 50% memory —
// what fraction of page-fault windows are sequential, strided, or irregular.
// Each model keeps a hot region (in-memory after warmup; accesses to it
// don't fault) and generates its cold-region traffic as segments: sequential
// runs, strided runs, and random bursts, with per-access noise injections
// that create exactly the short-term irregularities Leap's majority vote is
// designed to tolerate. Substituting pattern-calibrated generators for the
// real binaries is the central simulation trade recorded in DESIGN.md: every
// evaluation result downstream of the access stream depends only on the
// fault pattern mix, which Figure 3 pins down.
package workload

import (
	"fmt"
	"math"

	"leap/internal/core"
	"leap/internal/sim"
)

// Access is one memory reference: the virtual page touched and the CPU time
// the application spends before issuing it.
type Access struct {
	Page  core.PageID
	Think sim.Duration
}

// Generator produces an unbounded, deterministic access stream.
type Generator interface {
	// Name reports the workload identifier.
	Name() string
	// Pages reports the working-set size in pages.
	Pages() int64
	// AccessesPerOp reports how many accesses constitute one application
	// level operation (a transaction for VoltDB, a request for Memcached);
	// 1 when operations are not meaningful.
	AccessesPerOp() int
	// Next returns the next access.
	Next() Access
}

// Sequential scans the working set linearly, wrapping at the end — the
// paper's Sequential microbenchmark.
type Sequential struct {
	pages int64
	pos   int64
	think sim.Dist
	rng   *sim.RNG
}

// NewSequential returns a sequential scanner over pages pages.
func NewSequential(pages int64, seed uint64) *Sequential {
	return &Sequential{
		pages: pages,
		think: sim.Exponential{MeanVal: 500 * sim.Nanosecond},
		rng:   sim.NewRNG(seed),
	}
}

// Name implements Generator.
func (g *Sequential) Name() string { return "sequential" }

// Pages implements Generator.
func (g *Sequential) Pages() int64 { return g.pages }

// AccessesPerOp implements Generator.
func (g *Sequential) AccessesPerOp() int { return 1 }

// Next implements Generator.
func (g *Sequential) Next() Access {
	a := Access{Page: core.PageID(g.pos), Think: g.think.Sample(g.rng)}
	g.pos = (g.pos + 1) % g.pages
	return a
}

// Stride accesses the working set in fixed strides of k pages — the paper's
// Stride-10 microbenchmark with k=10.
type Stride struct {
	pages int64
	k     int64
	pos   int64
	think sim.Dist
	rng   *sim.RNG
}

// NewStride returns a stride-k scanner over pages pages.
func NewStride(pages, k int64, seed uint64) *Stride {
	if k == 0 {
		k = 1
	}
	return &Stride{
		pages: pages,
		k:     k,
		think: sim.Exponential{MeanVal: 500 * sim.Nanosecond},
		rng:   sim.NewRNG(seed),
	}
}

// Name implements Generator.
func (g *Stride) Name() string { return fmt.Sprintf("stride-%d", g.k) }

// Pages implements Generator.
func (g *Stride) Pages() int64 { return g.pages }

// AccessesPerOp implements Generator.
func (g *Stride) AccessesPerOp() int { return 1 }

// Next implements Generator.
func (g *Stride) Next() Access {
	a := Access{Page: core.PageID(g.pos), Think: g.think.Sample(g.rng)}
	g.pos = (g.pos + g.k) % g.pages
	return a
}

// Uniform touches uniformly random pages — the adversarial baseline with no
// exploitable pattern at all.
type Uniform struct {
	pages int64
	think sim.Dist
	rng   *sim.RNG
}

// NewUniform returns a uniform random workload over pages pages.
func NewUniform(pages int64, seed uint64) *Uniform {
	return &Uniform{
		pages: pages,
		think: sim.Exponential{MeanVal: 500 * sim.Nanosecond},
		rng:   sim.NewRNG(seed),
	}
}

// Name implements Generator.
func (g *Uniform) Name() string { return "uniform" }

// Pages implements Generator.
func (g *Uniform) Pages() int64 { return g.pages }

// AccessesPerOp implements Generator.
func (g *Uniform) AccessesPerOp() int { return 1 }

// Next implements Generator.
func (g *Uniform) Next() Access {
	return Access{
		Page:  core.PageID(g.rng.Int63n(g.pages)),
		Think: g.think.Sample(g.rng),
	}
}

// Zipf draws pages from a bounded zipfian popularity distribution
// (P(rank k) ∝ 1/k^s), the standard key-popularity model for key-value
// caches (the Facebook ETC analysis behind the paper's Memcached workload).
// Ranks are scattered over the page space with a multiplicative hash so
// popular pages are not spatially adjacent.
type Zipf struct {
	pages int64
	s     float64
	inv   zipfInv
	rng   *sim.RNG
	think sim.Dist
}

// NewZipf returns a zipfian workload with exponent s over pages pages.
func NewZipf(pages int64, s float64, seed uint64) *Zipf {
	if s <= 0 {
		s = 0.99
	}
	return &Zipf{
		pages: pages,
		s:     s,
		inv:   newZipfInv(pages, s),
		rng:   sim.NewRNG(seed),
		think: sim.Exponential{MeanVal: 500 * sim.Nanosecond},
	}
}

// Name implements Generator.
func (g *Zipf) Name() string { return "zipf" }

// Pages implements Generator.
func (g *Zipf) Pages() int64 { return g.pages }

// AccessesPerOp implements Generator.
func (g *Zipf) AccessesPerOp() int { return 1 }

// zipfInv inverts the continuous approximation of the zipf CDF (accurate
// enough for workload shaping). The n- and s-dependent terms are
// loop-invariant, so they are computed once here instead of on every draw —
// the cached values feed the exact same expressions, keeping every sampled
// rank bit-identical to recomputing them inline.
type zipfInv struct {
	n     int64
	isOne bool    // |s-1| < 1e-9: use the logarithmic form
	logN  float64 // ln(n), for the s≈1 branch
	// powTerm = n^(1-s) - 1 and invOneMinus = 1/(1-s), for the general branch.
	powTerm     float64
	invOneMinus float64
}

func newZipfInv(n int64, s float64) zipfInv {
	z := zipfInv{n: n}
	if math.Abs(s-1.0) < 1e-9 {
		z.isOne = true
		z.logN = math.Log(float64(n))
		return z
	}
	oneMinus := 1 - s
	z.powTerm = math.Pow(float64(n), oneMinus) - 1
	z.invOneMinus = 1 / oneMinus
	return z
}

// rank draws a zipf rank in [1, n].
func (z *zipfInv) rank(rng *sim.RNG) int64 {
	u := rng.Float64()
	var k int64
	if z.isOne {
		// CDF ≈ ln(k)/ln(n)
		k = int64(math.Exp(u * z.logN))
	} else {
		// CDF ≈ (k^(1-s) - 1) / (n^(1-s) - 1)
		k = int64(math.Pow(u*z.powTerm+1, z.invOneMinus))
	}
	if k < 1 {
		k = 1
	}
	if k > z.n {
		k = z.n
	}
	return k
}

// Next implements Generator.
func (g *Zipf) Next() Access {
	rank := g.inv.rank(g.rng)
	// Scatter ranks across the page space deterministically.
	page := core.PageID((uint64(rank) * 0x9E3779B97F4A7C15) % uint64(g.pages))
	return Access{Page: page, Think: g.think.Sample(g.rng)}
}
