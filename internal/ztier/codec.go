// Package ztier implements the compressed victim tier of the runtime: a
// deterministic LZ-style page codec plus a byte-budgeted compressed page
// pool (zswap-style). Evicted pages are sealed — compressed — into the pool
// instead of paying a fabric round trip, and a later fault unseals them with
// a microsecond-scale decompress charge. The codec is self-contained and
// allocation-free in steady state, so the wire protocol reuses it to ship
// doorbell batches with compressed page payloads.
//
// Block format: one mode byte, then the body.
//
//	mode 0 (stored): body is the input, verbatim — the fallback that caps
//	  any input, however incompressible, at MaxEncodedLen = n+1 bytes.
//	mode 1 (LZ):     body is a token stream. Each token byte packs a 4-bit
//	  literal length (high nibble) and a 4-bit match length code (low
//	  nibble); a nibble of 15 extends with continuation bytes (each byte
//	  adds its value, 255 continues — LZ4's scheme). Literals follow the
//	  length fields; then, unless the stream ends at the literals, a 2-byte
//	  little-endian back-reference offset (1..65535 into the output
//	  produced so far) and the extended match length (code + 4).
//
// Compress is a pure function of its input: the match-finder table is
// cleared per call, so equal pages compress to equal bytes regardless of
// history — the property every byte-identity gate in this repository leans
// on. Decompress rejects any malformed input (unknown mode, truncated
// fields, out-of-range back-references, output beyond the caller's limit)
// with an error, never a panic; FuzzZtierCodec drives hostile inputs
// through it.
package ztier

import (
	"encoding/binary"
	"fmt"
)

const (
	modeStored = 0x00 // body is the raw input
	modeLZ     = 0x01 // body is an LZ token stream

	// minMatch is the shortest back-reference worth encoding; the 4-bit
	// match code in each token is biased by it.
	minMatch = 4
	// maxOffset is the farthest back-reference the 2-byte offset field
	// carries.
	maxOffset = 1<<16 - 1
	// hashBits sizes the match-finder table: 4096 entries, one per position
	// of a 4KB page.
	hashBits = 12
	// extNibble is the nibble value that switches a length field to
	// extension bytes.
	extNibble = 15
	// minCompressLen is the shortest input worth attempting LZ on; anything
	// smaller goes out stored.
	minCompressLen = 16
	// maxCompressLen guards the int32 match-finder positions; larger inputs
	// go out stored.
	maxCompressLen = 1 << 30
)

// MaxEncodedLen bounds Compress's output for an n-byte input: the stored
// fallback is one mode byte plus the raw bytes, and Compress never emits an
// LZ block that is not strictly smaller than that.
func MaxEncodedLen(n int) int { return n + 1 }

// Compressor holds the match-finder state for Compress. The zero value is
// ready to use; a Compressor is not safe for concurrent use, but any number
// may run in parallel on their own inputs. Output depends only on the input
// bytes — never on what was compressed before.
type Compressor struct {
	table [1 << hashBits]int32 // position+1 of the last occurrence per hash
	buf   []byte               // retained LZ scratch between calls
}

// Compress appends the encoded block for src to dst and returns the
// extended slice. The output is at most MaxEncodedLen(len(src)) bytes:
// incompressible input falls back to a stored block. Equal inputs always
// produce equal outputs.
func (c *Compressor) Compress(dst, src []byte) []byte {
	if len(src) >= minCompressLen && len(src) <= maxCompressLen {
		if body, ok := c.compressLZ(src); ok {
			dst = append(dst, modeLZ)
			return append(dst, body...)
		}
	}
	dst = append(dst, modeStored)
	return append(dst, src...)
}

// compressLZ greedily encodes src into the Compressor's scratch buffer and
// reports whether the result beats the stored fallback. The hash table is
// cleared up front so the encoding is a pure function of src.
func (c *Compressor) compressLZ(src []byte) ([]byte, bool) {
	clear(c.table[:])
	out := c.buf[:0]
	// The LZ body must be strictly smaller than the stored body to win.
	budget := len(src) - 1
	anchor, pos := 0, 0
	last := len(src) - minMatch
	for pos <= last {
		h := hash4(src[pos:])
		cand := int(c.table[h]) - 1
		c.table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[pos:]) {
			pos++
			continue
		}
		mlen := minMatch
		for pos+mlen < len(src) && src[cand+mlen] == src[pos+mlen] {
			mlen++
		}
		var ok bool
		out, ok = emitSeq(out, src[anchor:pos], pos-cand, mlen, budget)
		if !ok {
			c.buf = out
			return nil, false
		}
		pos += mlen
		anchor = pos
	}
	if anchor < len(src) {
		var ok bool
		out, ok = emitSeq(out, src[anchor:], 0, 0, budget)
		if !ok {
			c.buf = out
			return nil, false
		}
	}
	c.buf = out
	return out, true
}

// emitSeq appends one token sequence — literals, then an optional match
// (offset > 0) — to out. It reports false when the sequence would push the
// body past budget, i.e. the encoding can no longer beat the stored
// fallback.
func emitSeq(out, lits []byte, offset, mlen, budget int) ([]byte, bool) {
	litLen := len(lits)
	need := 1 + litLen
	if litLen >= extNibble {
		need += 1 + (litLen-extNibble)/255
	}
	mcode := 0
	if offset > 0 {
		mcode = mlen - minMatch
		need += 2
		if mcode >= extNibble {
			need += 1 + (mcode-extNibble)/255
		}
	}
	if len(out)+need > budget {
		return out, false
	}
	litNib, matchNib := litLen, mcode
	if litNib > extNibble {
		litNib = extNibble
	}
	if matchNib > extNibble {
		matchNib = extNibble
	}
	out = append(out, byte(litNib<<4|matchNib))
	if litLen >= extNibble {
		out = appendExt(out, litLen-extNibble)
	}
	out = append(out, lits...)
	if offset > 0 {
		out = binary.LittleEndian.AppendUint16(out, uint16(offset))
		if mcode >= extNibble {
			out = appendExt(out, mcode-extNibble)
		}
	}
	return out, true
}

// appendExt appends v in the continuation encoding: 255 repeats, then the
// remainder.
func appendExt(out []byte, v int) []byte {
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// hash4 hashes the 4 bytes at b[0:4] into the match-finder table index.
func hash4(b []byte) uint32 {
	return (binary.LittleEndian.Uint32(b) * 2654435761) >> (32 - hashBits)
}

// Decompress appends the block src's decoded bytes to dst and returns the
// extended slice. limit bounds the decoded size (a hostile length field
// fails before any oversized copy). Any malformed input — empty, unknown
// mode, truncated fields, a back-reference outside the produced output, or
// output beyond limit — returns an error; valid input decodes to exactly the
// bytes Compress was given. When cap(dst)-len(dst) covers the decoded size,
// no allocation happens.
func Decompress(dst, src []byte, limit int) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("ztier: empty block")
	}
	mode, body := src[0], src[1:]
	switch mode {
	case modeStored:
		if len(body) > limit {
			return nil, fmt.Errorf("ztier: stored block of %dB exceeds limit %d", len(body), limit)
		}
		return append(dst, body...), nil
	case modeLZ:
		return decompressLZ(dst, body, limit)
	default:
		return nil, fmt.Errorf("ztier: unknown block mode 0x%02x", mode)
	}
}

// decompressLZ decodes an LZ token stream (see the package comment for the
// format) with full bounds checking.
func decompressLZ(dst, body []byte, limit int) ([]byte, error) {
	base := len(dst)
	for len(body) > 0 {
		token := body[0]
		body = body[1:]
		litLen := int(token >> 4)
		var err error
		if litLen, body, err = readExt(litLen, body); err != nil {
			return nil, err
		}
		if litLen > len(body) {
			return nil, fmt.Errorf("ztier: literal run of %dB truncated at %dB", litLen, len(body))
		}
		if len(dst)-base+litLen > limit {
			return nil, fmt.Errorf("ztier: decoded size exceeds limit %d", limit)
		}
		dst = append(dst, body[:litLen]...)
		body = body[litLen:]
		if len(body) == 0 {
			// The stream ends at a literal-only sequence; its match nibble
			// must be empty or the match was truncated away.
			if token&0x0F != 0 {
				return nil, fmt.Errorf("ztier: stream ends inside a match")
			}
			break
		}
		if len(body) < 2 {
			return nil, fmt.Errorf("ztier: truncated match offset")
		}
		off := int(binary.LittleEndian.Uint16(body))
		body = body[2:]
		if off == 0 || off > len(dst)-base {
			return nil, fmt.Errorf("ztier: back-reference offset %d outside %dB of output", off, len(dst)-base)
		}
		mlen := int(token & 0x0F)
		if mlen, body, err = readExt(mlen, body); err != nil {
			return nil, err
		}
		mlen += minMatch
		if len(dst)-base+mlen > limit {
			return nil, fmt.Errorf("ztier: decoded size exceeds limit %d", limit)
		}
		// Byte-at-a-time: matches may overlap their own output (RLE-style).
		for range mlen {
			dst = append(dst, dst[len(dst)-off])
		}
	}
	return dst, nil
}

// readExt extends a length nibble with continuation bytes when it is
// extNibble; otherwise it passes the nibble through.
func readExt(n int, body []byte) (int, []byte, error) {
	if n != extNibble {
		return n, body, nil
	}
	for {
		if len(body) == 0 {
			return 0, nil, fmt.Errorf("ztier: truncated length extension")
		}
		b := body[0]
		body = body[1:]
		n += int(b)
		if b != 255 {
			return n, body, nil
		}
	}
}
