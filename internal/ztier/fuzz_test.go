package ztier

import (
	"bytes"
	"testing"
)

// FuzzZtierCodec drives the block codec from both ends. The input is used
// twice: as raw bytes (compress → decompress must be the identity, within
// the MaxEncodedLen bound) and as a hostile encoded block (Decompress must
// reject or decode cleanly, never panic, never exceed the limit — and
// whatever it decodes must survive a fresh compress/decompress round trip).
func FuzzZtierCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 128))
	f.Add([]byte{modeStored, 1, 2, 3})
	f.Add([]byte{modeLZ, 0x10, 'a'})
	f.Add([]byte{modeLZ, 0x14, 'a', 0x01, 0x00}) // 1 literal + RLE match
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Compressor

		// Round-trip identity over the raw bytes.
		enc := c.Compress(nil, data)
		if len(enc) > MaxEncodedLen(len(data)) {
			t.Fatalf("encoded %dB to %dB, over the stored-fallback bound", len(data), len(enc))
		}
		dec, err := Decompress(nil, enc, len(data))
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip corrupted %dB input", len(data))
		}

		// Hostile decode: data as an encoded block.
		const limit = 1 << 16
		out, err := Decompress(nil, data, limit)
		if err != nil {
			return
		}
		if len(out) > limit {
			t.Fatalf("decode produced %dB past the %dB limit", len(out), limit)
		}
		enc2 := c.Compress(nil, out)
		dec2, err := Decompress(nil, enc2, len(out))
		if err != nil || !bytes.Equal(dec2, out) {
			t.Fatalf("re-encode of decoded output broke: %v", err)
		}
	})
}
