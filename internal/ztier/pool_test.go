package ztier

import (
	"bytes"
	"testing"

	"leap/internal/core"
)

func TestPoolSealTake(t *testing.T) {
	p := NewPool(1<<20, 4096)
	a, b := semiPage(1), semiPage(2)
	p.Put(1, a, false)
	p.Put(2, b, true)
	if !p.Contains(1) || !p.Contains(2) || p.Len() != 2 {
		t.Fatalf("pool holds %d pages, want 2", p.Len())
	}
	got, dirty, ok := p.Take(2, nil)
	if !ok || !dirty || !bytes.Equal(got, b) {
		t.Fatalf("Take(2) = ok=%v dirty=%v, bytes match %v", ok, dirty, bytes.Equal(got, b))
	}
	if p.Contains(2) {
		t.Fatal("Take is exclusive; page 2 still sealed")
	}
	got, dirty, ok = p.Take(1, nil)
	if !ok || dirty || !bytes.Equal(got, a) {
		t.Fatal("Take(1) lost the clean page")
	}
	if _, _, ok := p.Take(1, nil); ok {
		t.Fatal("double Take succeeded")
	}
	if p.UsedBytes() != 0 || p.Len() != 0 {
		t.Fatalf("drained pool charges %dB over %d pages", p.UsedBytes(), p.Len())
	}
}

func TestPoolReplace(t *testing.T) {
	p := NewPool(1<<20, 4096)
	p.Put(7, semiPage(1), false)
	used1 := p.UsedBytes()
	p.Put(7, semiPage(2), true)
	if p.Len() != 1 {
		t.Fatalf("replace left %d entries", p.Len())
	}
	got, dirty, ok := p.Take(7, nil)
	if !ok || !dirty || !bytes.Equal(got, semiPage(2)) {
		t.Fatal("replace kept the stale image")
	}
	if used1 <= 0 {
		t.Fatal("no budget charged")
	}
}

// TestPoolOverflowLRU drives the pool past its budget and checks that
// victims leave in LRU order, dirty victims carry their decompressed
// bytes, and the budget invariant holds after every insert.
func TestPoolOverflowLRU(t *testing.T) {
	// Room for roughly 3 incompressible pages.
	p := NewPool(3*(4096+1+entryOverhead), 4096)
	type evicted struct {
		page  core.PageID
		dirty bool
		raw   []byte
	}
	var out []evicted
	p.OnEvict = func(pg core.PageID, raw []byte, dirty bool) {
		out = append(out, evicted{pg, dirty, append([]byte(nil), raw...)})
	}
	pages := map[core.PageID][]byte{}
	for i := core.PageID(0); i < 6; i++ {
		img := make([]byte, 4096)
		lcgFill(img, uint64(i)+1) // incompressible: stored blocks, predictable cost
		pages[i] = img
		p.Put(i, img, i%2 == 0) // even pages dirty
		if p.UsedBytes() > p.Budget() {
			t.Fatalf("after insert %d: used %d > budget %d", i, p.UsedBytes(), p.Budget())
		}
	}
	if len(out) != 3 {
		t.Fatalf("%d overflow evictions, want 3", len(out))
	}
	for i, ev := range out {
		if ev.page != core.PageID(i) {
			t.Fatalf("eviction %d was page %d, want LRU order", i, ev.page)
		}
		if wantDirty := ev.page%2 == 0; ev.dirty != wantDirty {
			t.Fatalf("page %d dirty=%v, want %v", ev.page, ev.dirty, wantDirty)
		}
		if ev.dirty && !bytes.Equal(ev.raw, pages[ev.page]) {
			t.Fatalf("dirty victim %d lost its bytes", ev.page)
		}
		if !ev.dirty && ev.raw != nil {
			t.Fatalf("clean victim %d carried bytes", ev.page)
		}
	}
	st := p.Stats()
	if st.OverflowEvictions != 3 || st.OverflowDirty != 2 || st.Seals != 6 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPoolTakeRefreshesLRU: taking a page must not disturb the remaining
// LRU order, and a page sealed twice sits at MRU.
func TestPoolResealMovesToFront(t *testing.T) {
	p := NewPool(2*(4096+1+entryOverhead), 4096)
	var out []core.PageID
	p.OnEvict = func(pg core.PageID, _ []byte, _ bool) { out = append(out, pg) }
	imgA, imgB, imgC := make([]byte, 4096), make([]byte, 4096), make([]byte, 4096)
	lcgFill(imgA, 1)
	lcgFill(imgB, 2)
	lcgFill(imgC, 3)
	p.Put(1, imgA, false)
	p.Put(2, imgB, false)
	p.Put(1, imgA, false) // reseal: page 1 becomes MRU
	p.Put(3, imgC, false) // overflow must evict page 2, the LRU
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("evicted %v, want [2]", out)
	}
}

// TestPoolZeroAllocSteadyState pins the hit path: once the free lists are
// warm, a Take+Put cycle allocates nothing.
func TestPoolZeroAllocSteadyState(t *testing.T) {
	p := NewPool(1<<20, 4096)
	img := semiPage(9)
	p.Put(1, img, true)
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		got, _, ok := p.Take(1, dst[:0])
		if !ok || len(got) != 4096 {
			t.Fatal("take failed")
		}
		p.Put(1, got, true)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Take+Put allocated %.1f times/op", allocs)
	}
}
