package ztier

import (
	"bytes"
	"testing"
)

// lcgFill fills b with a seeded LCG byte stream — incompressible enough to
// force the stored fallback.
func lcgFill(b []byte, seed uint64) {
	x := seed
	for i := range b {
		x = x*6364136223846793005 + 1442695040888963407
		b[i] = byte(x >> 56)
	}
}

// semiPage builds a 4KB page of repeated 16-byte records with a few noise
// bytes — the compressible-but-not-trivial shape the figure driver uses.
func semiPage(seed uint64) []byte {
	p := make([]byte, 4096)
	x := seed
	for off := 0; off < len(p); off += 16 {
		copy(p[off:], "record-deadbeef!")
		x = x*6364136223846793005 + 1442695040888963407
		p[off+12] = byte(x >> 56)
	}
	return p
}

func roundTrip(t *testing.T, c *Compressor, src []byte) []byte {
	t.Helper()
	enc := c.Compress(nil, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Fatalf("encoded %dB input to %dB > MaxEncodedLen %d", len(src), len(enc), MaxEncodedLen(len(src)))
	}
	dec, err := Decompress(nil, enc, len(src))
	if err != nil {
		t.Fatalf("decompress failed: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip lost bytes: %dB in, %dB out", len(src), len(dec))
	}
	return enc
}

func TestCodecRoundTrip(t *testing.T) {
	var c Compressor
	inputs := [][]byte{
		nil,
		[]byte("x"),
		[]byte("short"),
		make([]byte, 4096), // zero page: maximally compressible
		semiPage(1),
		semiPage(2),
		bytes.Repeat([]byte{0xAB}, 4096),
		bytes.Repeat([]byte("0123456789abcdef"), 300),
	}
	rnd := make([]byte, 4096)
	lcgFill(rnd, 7)
	inputs = append(inputs, rnd)
	for i, src := range inputs {
		enc := roundTrip(t, &c, src)
		if len(src) >= 256 && isLowEntropy(src) && len(enc) >= len(src) {
			t.Errorf("input %d: compressible %dB input did not shrink (%dB)", i, len(src), len(enc))
		}
	}
}

// isLowEntropy marks the test inputs expected to compress.
func isLowEntropy(b []byte) bool {
	seen := map[byte]bool{}
	for _, x := range b[:256] {
		seen[x] = true
	}
	return len(seen) < 64
}

func TestCodecStoredFallback(t *testing.T) {
	var c Compressor
	src := make([]byte, 4096)
	lcgFill(src, 42)
	enc := c.Compress(nil, src)
	if len(enc) != MaxEncodedLen(len(src)) {
		t.Fatalf("incompressible page encoded to %dB, want stored %d", len(enc), MaxEncodedLen(len(src)))
	}
	if enc[0] != modeStored {
		t.Fatalf("incompressible page used mode 0x%02x, want stored", enc[0])
	}
}

// TestCodecDeterministic is the byte-identity contract: compression output
// depends only on the input, never on what the Compressor saw before.
func TestCodecDeterministic(t *testing.T) {
	page := semiPage(3)
	var fresh Compressor
	want := fresh.Compress(nil, page)

	var used Compressor
	poison := make([]byte, 4096)
	lcgFill(poison, 99)
	used.Compress(nil, poison)
	used.Compress(nil, semiPage(8))
	got := used.Compress(nil, page)
	if !bytes.Equal(want, got) {
		t.Fatal("compression output depends on compressor history")
	}
}

func TestDecompressRejectsCorruptInput(t *testing.T) {
	var c Compressor
	enc := c.Compress(nil, semiPage(4))
	cases := map[string][]byte{
		"empty":            {},
		"unknown mode":     {0x7F, 1, 2, 3},
		"truncated":        enc[:len(enc)/2],
		"offset zero":      {modeLZ, 0x04, 0x00, 0x00, 0x00},       // match before any output
		"offset too far":   {modeLZ, 0x14, 'a', 0x09, 0x00},        // 1 literal, offset 9
		"dangling match":   {modeLZ, 0x11},                         // stream ends inside a match
		"truncated offset": {modeLZ, 0x11, 0x01},                   // 1 offset byte of 2
		"length ext EOF":   {modeLZ, 0xF0},                         // literal ext never terminates
		"literal overrun":  {modeLZ, 0x50, 'a', 'b'},               // 5 literals, 2 present
	}
	for name, in := range cases {
		if _, err := Decompress(nil, in, 4096); err == nil {
			t.Errorf("%s: corrupt input decoded without error", name)
		}
	}
	// Flipping any single byte of a valid block must never decode to the
	// original *and* claim success with different content silently — it
	// either errors or produces output; both are fine, panics are not.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		Decompress(nil, mut, 4096)
	}
}

func TestDecompressHonorsLimit(t *testing.T) {
	var c Compressor
	src := make([]byte, 4096) // zero page compresses far below 4096
	enc := c.Compress(nil, src)
	if _, err := Decompress(nil, enc, 4095); err == nil {
		t.Fatal("decode past the limit succeeded")
	}
	if _, err := Decompress(nil, enc, 4096); err != nil {
		t.Fatalf("decode at the exact limit failed: %v", err)
	}
	stored := c.Compress(nil, []byte("abcdef"))
	if _, err := Decompress(nil, stored, 3); err == nil {
		t.Fatal("stored block past the limit succeeded")
	}
}

// TestDecompressZeroAlloc pins the unseal fast path: decoding into a
// buffer with enough capacity must not allocate.
func TestDecompressZeroAlloc(t *testing.T) {
	var c Compressor
	enc := c.Compress(nil, semiPage(5))
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := Decompress(dst[:0], enc, 4096)
		if err != nil || len(out) != 4096 {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Decompress into sized buffer allocated %.1f times/op", allocs)
	}
}
