package ztier

import (
	"fmt"

	"leap/internal/core"
	"leap/internal/pagemap"
)

// entryOverhead is the bookkeeping charge per sealed page, on top of its
// compressed bytes, so a budget of B bytes admits strictly fewer than
// B/entryOverhead pages even at infinite compression ratio.
const entryOverhead = 64

// entry is one sealed page: its compressed bytes on the pool's LRU list.
type entry struct {
	page  core.PageID
	data  []byte
	dirty bool
	prev  *entry
	next  *entry
}

// Stats is a snapshot of a Pool's accounting.
type Stats struct {
	// Pages and UsedBytes are the current occupancy: sealed pages and their
	// budget charge (compressed bytes plus entryOverhead each).
	Pages     int
	UsedBytes int64
	// Seals counts pages compressed in; Takes counts exclusive removals on
	// a hit (Take).
	Seals, Takes int64
	// OverflowEvictions counts sealed pages pushed out by the byte budget;
	// OverflowDirty of those carried the only fresh copy of their bytes and
	// were handed to OnEvict for writeback.
	OverflowEvictions, OverflowDirty int64
	// RawBytes and CompressedBytes are cumulative sealed input and output
	// sizes; their quotient is the realized compression ratio.
	RawBytes, CompressedBytes int64
}

// Pool is a byte-budgeted compressed page store: the zswap-style victim
// tier one runtime stripe owns. Put seals a page (compress + LRU insert),
// Take unseals it exclusively (decompress + remove), and inserts that push
// the pool past its budget evict the LRU tail through OnEvict. Entry nodes
// and compressed buffers are free-listed, so steady-state seal/unseal churn
// does not allocate. Not safe for concurrent use: the owning stripe's lock
// serializes it.
type Pool struct {
	budget   int64
	pageSize int
	used     int64
	idx      *pagemap.Map[*entry]
	head     *entry // MRU
	tail     *entry // LRU
	comp     Compressor
	free     *entry // entry free list, linked through next; buffers retained
	scratch  []byte // decompress scratch for dirty overflow victims

	// OnEvict, when set, receives each page the byte budget pushes out.
	// raw holds the page's decompressed bytes only when dirty is true —
	// a dirty victim's only fresh copy, which the owner must write back;
	// clean victims pass raw == nil (their backing-store image is current).
	// Called synchronously inside Put, after the victim has left the pool.
	OnEvict func(page core.PageID, raw []byte, dirty bool)

	stats Stats
}

// NewPool returns a pool that seals pages of at most pageSize bytes under a
// budget of bytes (compressed sizes plus entryOverhead each).
func NewPool(budget int64, pageSize int) *Pool {
	return &Pool{
		budget:   budget,
		pageSize: pageSize,
		idx:      pagemap.New[*entry](0),
	}
}

// Budget reports the configured byte budget.
func (p *Pool) Budget() int64 { return p.budget }

// Len reports the number of sealed pages.
func (p *Pool) Len() int { return p.idx.Len() }

// UsedBytes reports the current budget charge.
func (p *Pool) UsedBytes() int64 { return p.used }

// Contains reports whether page is sealed in the pool.
func (p *Pool) Contains(page core.PageID) bool { return p.idx.Contains(page) }

// Stats reports a snapshot of the pool's accounting.
func (p *Pool) Stats() Stats {
	s := p.stats
	s.Pages = p.idx.Len()
	s.UsedBytes = p.used
	return s
}

// Put seals page's bytes (at most pageSize of them) into the pool, marking
// whether they are dirty — the only fresh copy, which an overflow eviction
// must write back. A page already sealed is replaced. Inserts that push the
// pool past its budget evict LRU victims through OnEvict before Put
// returns; a page whose compressed size alone exceeds the budget passes
// straight through to OnEvict.
func (p *Pool) Put(page core.PageID, src []byte, dirty bool) {
	if old, ok := p.idx.Get(page); ok {
		p.unlink(old)
		p.idx.Delete(page)
		p.used -= p.cost(old)
		p.freeEntry(old)
	}
	e := p.newEntry()
	e.page = page
	e.dirty = dirty
	e.data = p.comp.Compress(e.data[:0], src)
	p.idx.Put(page, e)
	p.linkFront(e)
	p.used += p.cost(e)
	p.stats.Seals++
	p.stats.RawBytes += int64(len(src))
	p.stats.CompressedBytes += int64(len(e.data))
	for p.used > p.budget && p.tail != nil {
		p.evictTail()
	}
}

// Take unseals page exclusively: its bytes are appended to dst (which needs
// cap for at most pageSize more bytes to stay allocation-free), the entry
// leaves the pool, and its dirty mark is returned. ok is false when the
// page is not sealed. Sealed bytes are the pool's own Compress output, so a
// decode failure here means memory corruption: Take panics rather than
// propagate silently wrong page contents.
func (p *Pool) Take(page core.PageID, dst []byte) (data []byte, dirty bool, ok bool) {
	e, found := p.idx.Get(page)
	if !found {
		return nil, false, false
	}
	p.unlink(e)
	p.idx.Delete(page)
	p.used -= p.cost(e)
	raw, err := Decompress(dst, e.data, p.pageSize)
	if err != nil {
		panic(fmt.Sprintf("ztier: sealed page %d corrupt: %v", page, err))
	}
	dirty = e.dirty
	p.freeEntry(e)
	p.stats.Takes++
	return raw, dirty, true
}

// evictTail pushes the LRU entry out of the pool and hands it to OnEvict.
func (p *Pool) evictTail() {
	v := p.tail
	p.unlink(v)
	p.idx.Delete(v.page)
	p.used -= p.cost(v)
	p.stats.OverflowEvictions++
	page, dirty := v.page, v.dirty
	var raw []byte
	if dirty {
		p.stats.OverflowDirty++
		var err error
		raw, err = Decompress(p.scratch[:0], v.data, p.pageSize)
		if err != nil {
			panic(fmt.Sprintf("ztier: sealed page %d corrupt: %v", page, err))
		}
		p.scratch = raw[:0]
	}
	p.freeEntry(v)
	if p.OnEvict != nil {
		p.OnEvict(page, raw, dirty)
	}
}

// cost is an entry's budget charge.
func (p *Pool) cost(e *entry) int64 { return int64(len(e.data)) + entryOverhead }

// linkFront inserts e at the MRU head.
func (p *Pool) linkFront(e *entry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

// unlink removes e from the LRU list.
func (p *Pool) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// newEntry takes a node off the free list (its compressed buffer retained)
// or allocates one.
func (p *Pool) newEntry() *entry {
	e := p.free
	if e == nil {
		return &entry{}
	}
	p.free = e.next
	e.next = nil
	return e
}

// freeEntry returns an unlinked node to the free list.
func (p *Pool) freeEntry(e *entry) {
	e.data = e.data[:0]
	e.dirty = false
	e.next = p.free
	p.free = e
}
