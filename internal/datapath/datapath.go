// Package datapath models the host-side kernel data path a remote-page
// request traverses, reproducing the stage structure and measured costs of
// the paper's Figure 1:
//
//	entry (VFS/MMU + cache lookup)          ≈ 0.27µs
//	block-layer bio preparation             ≈ 10.04µs   (legacy only)
//	request-queue staging/merging/batching  ≈ 21.88µs   (legacy only, heavy tail)
//	dispatch queue                          ≈ 2.1µs
//	device access                           (storage/rdma, added by caller)
//
// The paper's observation (§2.2) is that the two block-layer stages — about
// 34µs on average, with high variance from batching — dominate RDMA's 4.3µs
// device time, capping what disaggregation can deliver. Leap's lean path
// (§4.2, §4.4) deletes exactly those stages and goes straight from the fault
// handler to the RDMA dispatch queue. Both paths are modeled here; the
// experiments toggle between them.
package datapath

import (
	"fmt"

	"leap/internal/metrics"
	"leap/internal/sim"
)

// Kind selects the data path variant.
type Kind int

// Path kinds.
const (
	// Legacy is the stock Linux path through the block layer.
	Legacy Kind = iota
	// Lean is Leap's path: fault handler → RDMA dispatch, no block layer.
	Lean
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Legacy:
		return "legacy"
	case Lean:
		return "lean"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes the per-stage latency distributions. Zero-valued
// fields take the paper's Figure 1 calibration.
type Config struct {
	Kind     Kind
	Entry    sim.Dist // fault/VFS entry + cache lookup
	BioPrep  sim.Dist // bio allocation + block-layer prep (legacy only)
	Staging  sim.Dist // request-queue insertion/merge/sort/staging (legacy only)
	Dispatch sim.Dist // dispatch-queue handoff
	HitPath  sim.Dist // full cost of a cache hit
}

// Paper-calibrated defaults (Figure 1).
func (c Config) withDefaults() Config {
	if c.Entry == nil {
		c.Entry = sim.Normal{Mu: 270, Sigma: 40, Floor: 100}
	}
	if c.BioPrep == nil {
		c.BioPrep = sim.LogNormal{MeanVal: 10040, Sigma: 0.45, Floor: 2000}
	}
	if c.Staging == nil {
		// The batching/merging stage: the variance source behind the default
		// path's tail (σ=1.0 puts p99 ≈ 8× the median).
		c.Staging = sim.LogNormal{MeanVal: 21880, Sigma: 1.0, Floor: 3000}
	}
	if c.Dispatch == nil {
		c.Dispatch = sim.Normal{Mu: 2100, Sigma: 300, Floor: 500}
	}
	if c.HitPath == nil {
		if c.Kind == Legacy {
			// Figure 2's caption: disaggregation systems on the stock path
			// carry "constant implementation overheads that cap their
			// minimum latency to around 1µs" — even a cache hit traverses
			// the block-device plumbing. Leap's hit path is the bare fault
			// handler at 0.27µs; the ratio is the paper's 4.07× sequential
			// median gain.
			c.HitPath = sim.Normal{Mu: 1100, Sigma: 150, Floor: 600}
		} else {
			c.HitPath = sim.Normal{Mu: 270, Sigma: 40, Floor: 100}
		}
	}
	return c
}

// Breakdown is the per-stage cost of one request, for Figure 1 rendering.
type Breakdown struct {
	Entry    sim.Duration
	BioPrep  sim.Duration
	Staging  sim.Duration
	Dispatch sim.Duration
}

// Total sums the stages.
func (b Breakdown) Total() sim.Duration {
	return b.Entry + b.BioPrep + b.Staging + b.Dispatch
}

// Path samples host-side request overhead. Not safe for concurrent use.
type Path struct {
	cfg Config
	rng *sim.RNG

	// Per-stage distributions observed, for the Figure 1 experiment.
	EntryHist    metrics.Histogram
	BioPrepHist  metrics.Histogram
	StagingHist  metrics.Histogram
	DispatchHist metrics.Histogram
}

// New returns a Path of the given kind seeded deterministically.
func New(cfg Config, rng *sim.RNG) *Path {
	return &Path{cfg: cfg.withDefaults(), rng: rng}
}

// Kind reports the path variant.
func (p *Path) Kind() Kind { return p.cfg.Kind }

// RequestOverhead samples the host-side cost of one miss (everything except
// the device access and page allocation) and records the per-stage
// histograms.
func (p *Path) RequestOverhead() Breakdown {
	var b Breakdown
	b.Entry = p.cfg.Entry.Sample(p.rng)
	p.EntryHist.Observe(b.Entry)
	if p.cfg.Kind == Legacy {
		b.BioPrep = p.cfg.BioPrep.Sample(p.rng)
		b.Staging = p.cfg.Staging.Sample(p.rng)
		p.BioPrepHist.Observe(b.BioPrep)
		p.StagingHist.Observe(b.Staging)
	}
	b.Dispatch = p.cfg.Dispatch.Sample(p.rng)
	p.DispatchHist.Observe(b.Dispatch)
	return b
}

// HitLatency samples the cost of serving a request from the page cache.
func (p *Path) HitLatency() sim.Duration {
	return p.cfg.HitPath.Sample(p.rng)
}

// DoorbellOverhead samples the host-side cost of one batched submission:
// the path is traversed once — one fault-handler entry, one (legacy-only)
// block-layer pass, one dispatch-queue insertion — and every request in the
// doorbell rides it together. This is exactly how Linux's swapin_readahead
// amortizes the block layer over a read-ahead window, and how Leap's lean
// path amortizes its dispatch doorbell (§4.4); the per-page residual cost
// lives in the device/fabric service time, not here. Draws the same samples
// as RequestOverhead, so a one-op doorbell costs exactly one request.
func (p *Path) DoorbellOverhead() Breakdown {
	return p.RequestOverhead()
}

// MeanOverhead reports the expected host-side overhead of this path — the
// analytic counterpart of RequestOverhead for quick sanity checks.
func (p *Path) MeanOverhead() sim.Duration {
	m := p.cfg.Entry.Mean() + p.cfg.Dispatch.Mean()
	if p.cfg.Kind == Legacy {
		m += p.cfg.BioPrep.Mean() + p.cfg.Staging.Mean()
	}
	return m
}
