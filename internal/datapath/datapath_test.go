package datapath

import (
	"math"
	"testing"

	"leap/internal/sim"
)

func TestKindString(t *testing.T) {
	if Legacy.String() != "legacy" || Lean.String() != "lean" {
		t.Fatal("Kind.String broken")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatal("unknown kind string")
	}
}

func TestLegacyPathStages(t *testing.T) {
	p := New(Config{Kind: Legacy}, sim.NewRNG(1))
	b := p.RequestOverhead()
	if b.Entry <= 0 || b.BioPrep <= 0 || b.Staging <= 0 || b.Dispatch <= 0 {
		t.Fatalf("legacy breakdown has empty stages: %+v", b)
	}
	if b.Total() != b.Entry+b.BioPrep+b.Staging+b.Dispatch {
		t.Fatal("Total mismatch")
	}
}

func TestLeanPathSkipsBlockLayer(t *testing.T) {
	p := New(Config{Kind: Lean}, sim.NewRNG(1))
	for i := 0; i < 100; i++ {
		b := p.RequestOverhead()
		if b.BioPrep != 0 || b.Staging != 0 {
			t.Fatalf("lean path sampled block-layer stages: %+v", b)
		}
	}
	if p.BioPrepHist.Count() != 0 || p.StagingHist.Count() != 0 {
		t.Fatal("lean path recorded block-layer histograms")
	}
}

func TestPaperCalibration(t *testing.T) {
	// Empirical stage means must match Figure 1 within 5%.
	p := New(Config{Kind: Legacy}, sim.NewRNG(42))
	const n = 200000
	var entry, bio, staging, dispatch float64
	for i := 0; i < n; i++ {
		b := p.RequestOverhead()
		entry += float64(b.Entry)
		bio += float64(b.BioPrep)
		staging += float64(b.Staging)
		dispatch += float64(b.Dispatch)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s mean = %.0fns, want ~%.0fns", name, got, want)
		}
	}
	check("entry", entry/n, 270)
	check("bioPrep", bio/n, 10040)
	check("staging", staging/n, 21880)
	check("dispatch", dispatch/n, 2100)
}

func TestMeanOverheadGap(t *testing.T) {
	// The paper's headline: ~34µs of block-layer overhead separates the
	// two paths.
	rng := sim.NewRNG(1)
	legacy := New(Config{Kind: Legacy}, rng)
	lean := New(Config{Kind: Lean}, rng)
	gap := legacy.MeanOverhead() - lean.MeanOverhead()
	if gap < 30*sim.Microsecond || gap > 36*sim.Microsecond {
		t.Fatalf("block-layer overhead gap = %v, want ~32µs", gap)
	}
}

func TestStagingHeavyTail(t *testing.T) {
	// The staging stage must show the paper's high variance: p99 well above
	// the median.
	p := New(Config{Kind: Legacy}, sim.NewRNG(7))
	for i := 0; i < 100000; i++ {
		p.RequestOverhead()
	}
	med := p.StagingHist.Percentile(50)
	p99 := p.StagingHist.Percentile(99)
	if float64(p99) < 4*float64(med) {
		t.Fatalf("staging tail too light: p50=%v p99=%v", med, p99)
	}
}

func TestHitLatencyCalibration(t *testing.T) {
	// Lean (Leap) hits are sub-µs; legacy hits carry the ~1µs constant
	// implementation overhead Figure 2's caption describes.
	lean := New(Config{Kind: Lean}, sim.NewRNG(3))
	var leanSum float64
	for i := 0; i < 10000; i++ {
		l := lean.HitLatency()
		if l <= 0 || l > sim.Microsecond {
			t.Fatalf("lean hit latency %v out of range", l)
		}
		leanSum += float64(l)
	}
	if mean := leanSum / 10000; mean < 200 || mean > 350 {
		t.Fatalf("lean hit mean = %.0fns, want ~270ns", mean)
	}
	legacy := New(Config{Kind: Legacy}, sim.NewRNG(3))
	var legacySum float64
	for i := 0; i < 10000; i++ {
		legacySum += float64(legacy.HitLatency())
	}
	if mean := legacySum / 10000; mean < 900 || mean > 1300 {
		t.Fatalf("legacy hit mean = %.0fns, want ~1.1µs", mean)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Duration {
		p := New(Config{Kind: Legacy}, sim.NewRNG(55))
		out := make([]sim.Duration, 100)
		for i := range out {
			out[i] = p.RequestOverhead().Total()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
