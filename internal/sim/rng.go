package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; give each simulated entity
// its own stream via Fork.
//
// math/rand is deliberately not used: its global state and historical seeding
// behaviour make cross-version reproducibility awkward, and experiments here
// must replay bit-identically from a seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero, is
// valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Scramble once so nearby seeds diverge immediately.
	r.Uint64()
	return r
}

// Fork derives an independent stream from r. The derived stream is a pure
// function of r's current state and the tag, so forks are reproducible.
func (r *RNG) Fork(tag uint64) *RNG {
	return NewRNG(r.Uint64() ^ (tag * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next value of the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second half is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand's Shuffle contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
