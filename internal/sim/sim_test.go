package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != Time(5*Microsecond) {
		t.Fatalf("Now() = %d, want %d", got, 5*Microsecond)
	}
	c.Advance(3 * Nanosecond)
	if got := c.Now(); got != Time(5*Microsecond+3) {
		t.Fatalf("Now() = %d, want %d", got, 5*Microsecond+3)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(-5)
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %d, want 10 (negative advance must be ignored)", got)
	}
}

func TestClockAdvanceToMonotone(t *testing.T) {
	var c Clock
	c.AdvanceTo(100)
	c.AdvanceTo(50) // must not go backwards
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	c.AdvanceTo(150)
	if got := c.Now(); got != 150 {
		t.Fatalf("Now() = %d, want 150", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10)
	t1 := t0.Add(5 * Nanosecond)
	if t1 != 15 {
		t.Fatalf("Add = %d, want 15", t1)
	}
	if d := t1.Sub(t0); d != 5 {
		t.Fatalf("Sub = %d, want 5", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{4300 * Nanosecond, "4.30µs"},
		{20 * Microsecond, "20.00µs"},
		{5 * Millisecond, "5.00ms"},
		{2 * Second, "2.00s"},
		{-500 * Nanosecond, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds = %v, want 1500", got)
	}
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds = %v, want 1.5", got)
	}
	if got := d.Seconds(); got != 0.0015 {
		t.Errorf("Seconds = %v, want 0.0015", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork(1)
	// Re-derive with the same state: must replay.
	r2 := NewRNG(7)
	f2 := r2.Fork(1)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("fork not reproducible at draw %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64MeanRoughlyHalf(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed multiset; sum = %d, want 36", sum)
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed{Value: 42}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 42 {
			t.Fatalf("Fixed.Sample = %d, want 42", got)
		}
	}
	if d.Mean() != 42 {
		t.Fatalf("Fixed.Mean = %d, want 42", d.Mean())
	}
}

func TestUniformDistBounds(t *testing.T) {
	d := Uniform{Min: 10, Max: 20}
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform sample %d out of [10,20]", v)
		}
	}
	if d.Mean() != 15 {
		t.Fatalf("Uniform.Mean = %d, want 15", d.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Min: 10, Max: 10}
	if got := d.Sample(NewRNG(1)); got != 10 {
		t.Fatalf("degenerate Uniform sample = %d, want 10", got)
	}
}

func TestNormalDistFloorAndMean(t *testing.T) {
	d := Normal{Mu: 1000, Sigma: 200, Floor: 1}
	r := NewRNG(31)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 1 {
			t.Fatalf("Normal sample %d below floor", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-1000) > 10 {
		t.Fatalf("Normal empirical mean = %v, want ~1000", mean)
	}
}

func TestLogNormalMeanAndTail(t *testing.T) {
	d := LogNormal{MeanVal: 10000, Sigma: 1.0, Floor: 1}
	r := NewRNG(37)
	var sum float64
	maxV := Duration(0)
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += float64(v)
		if v > maxV {
			maxV = v
		}
	}
	mean := sum / n
	if math.Abs(mean-10000)/10000 > 0.05 {
		t.Fatalf("LogNormal empirical mean = %v, want ~10000", mean)
	}
	// Heavy tail: the max should far exceed the mean.
	if float64(maxV) < 5*mean {
		t.Fatalf("LogNormal tail too light: max %v vs mean %v", maxV, mean)
	}
}

func TestExponentialDistMean(t *testing.T) {
	d := Exponential{MeanVal: 5000, Floor: 0}
	r := NewRNG(41)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	mean := sum / n
	if math.Abs(mean-5000)/5000 > 0.05 {
		t.Fatalf("Exponential empirical mean = %v, want ~5000", mean)
	}
}

func TestDistSamplesNonNegativeProperty(t *testing.T) {
	// Property: all distributions produce non-negative samples for arbitrary
	// seeds.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		dists := []Dist{
			Fixed{Value: 5},
			Uniform{Min: 0, Max: 100},
			Normal{Mu: 50, Sigma: 100, Floor: 0},
			LogNormal{MeanVal: 100, Sigma: 1.5, Floor: 0},
			Exponential{MeanVal: 100},
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-square-ish sanity check on low byte distribution.
	r := NewRNG(101)
	var buckets [256]int
	const n = 256 * 1000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()&0xff]++
	}
	for b, c := range buckets {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has count %d, expected ~1000", b, c)
		}
	}
}
