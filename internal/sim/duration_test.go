package sim

import "testing"

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"250ns", 250 * Nanosecond},
		{"4.3µs", 4300 * Nanosecond},
		{"4.3μs", 4300 * Nanosecond},
		{"200us", 200 * Microsecond},
		{"10ms", 10 * Millisecond},
		{"1.5s", 1500 * Millisecond},
		{" 7ms ", 7 * Millisecond},
		{"0ns", 0},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseDuration(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseDurationRejects(t *testing.T) {
	for _, in := range []string{"", "10", "abcms", "-5ms", "10m", "ms", "infs", "NaNns", "1e300ms", "-infµs"} {
		if d, err := ParseDuration(in); err == nil {
			t.Fatalf("ParseDuration(%q) = %v, want error", in, d)
		}
	}
}

func TestParseDurationRoundTripsString(t *testing.T) {
	// Values printed by Duration.String() at each unit parse back exactly.
	for _, d := range []Duration{3 * Nanosecond, 40 * Microsecond, 7 * Millisecond, 2 * Second} {
		got, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", d.String(), err)
		}
		if got != d {
			t.Fatalf("round trip %v → %v", d, got)
		}
	}
}
