package sim

import "math"

// A Dist produces virtual-time latency samples. Implementations must be
// deterministic functions of the RNG stream they are given.
type Dist interface {
	// Sample draws one latency. Results are always >= 0.
	Sample(r *RNG) Duration
	// Mean reports the distribution's expected value.
	Mean() Duration
}

// Fixed is a degenerate distribution: every sample equals Value.
type Fixed struct {
	Value Duration
}

// Sample implements Dist.
func (f Fixed) Sample(*RNG) Duration { return f.Value }

// Mean implements Dist.
func (f Fixed) Mean() Duration { return f.Value }

// Uniform samples uniformly in [Min, Max].
type Uniform struct {
	Min, Max Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() Duration { return (u.Min + u.Max) / 2 }

// Normal samples a truncated normal: values below Floor are clamped. It
// models stages with symmetric jitter (e.g. dispatch).
type Normal struct {
	Mu    Duration
	Sigma Duration
	Floor Duration
}

// Sample implements Dist.
func (n Normal) Sample(r *RNG) Duration {
	v := Duration(float64(n.Mu) + float64(n.Sigma)*r.NormFloat64())
	if v < n.Floor {
		v = n.Floor
	}
	return v
}

// Mean implements Dist. The truncation bias is negligible for the
// parameterizations used here (Mu >> Sigma), so Mu is reported.
func (n Normal) Mean() Duration { return n.Mu }

// LogNormal samples a log-normal distribution parameterized by its desired
// mean and a shape sigma (the sigma of the underlying normal). Heavy-tailed
// kernel stages — request-queue staging and batching in particular — are
// modeled with this: most samples land near the median with occasional large
// excursions, which is exactly the behaviour the paper blames for the default
// data path's tail latency.
type LogNormal struct {
	// MeanVal is the distribution's mean E[X].
	MeanVal Duration
	// Sigma is the underlying normal's standard deviation; larger values give
	// heavier tails. Typical kernel-stage modeling uses 0.5–1.2.
	Sigma float64
	// Floor clamps the minimum sample.
	Floor Duration
}

// Sample implements Dist.
func (l LogNormal) Sample(r *RNG) Duration {
	if l.MeanVal <= 0 {
		return l.Floor
	}
	// For LogNormal(mu, sigma), E[X] = exp(mu + sigma^2/2); solve for mu.
	mu := math.Log(float64(l.MeanVal)) - l.Sigma*l.Sigma/2
	v := Duration(math.Exp(mu + l.Sigma*r.NormFloat64()))
	if v < l.Floor {
		v = l.Floor
	}
	return v
}

// Mean implements Dist.
func (l LogNormal) Mean() Duration { return l.MeanVal }

// Exponential samples an exponential distribution with the given mean,
// clamped below at Floor.
type Exponential struct {
	MeanVal Duration
	Floor   Duration
}

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) Duration {
	v := Duration(float64(e.MeanVal) * r.ExpFloat64())
	if v < e.Floor {
		v = e.Floor
	}
	return v
}

// Mean implements Dist.
func (e Exponential) Mean() Duration { return e.MeanVal }
