package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// durationUnits maps a unit suffix to its size in virtual nanoseconds,
// longest suffixes first so "ms" wins over "s".
var durationUnits = []struct {
	suffix string
	scale  Duration
}{
	{"ns", Nanosecond},
	{"µs", Microsecond},
	{"μs", Microsecond}, // U+03BC, the other common mu
	{"us", Microsecond},
	{"ms", Millisecond},
	{"s", Second},
}

// ParseDuration parses a virtual-time duration like "250ns", "4.3µs",
// "10ms" or "1.5s". The accepted units are ns, us/µs, ms and s; a bare
// number is rejected so schedule files stay unit-explicit.
func ParseDuration(s string) (Duration, error) {
	s = strings.TrimSpace(s)
	for _, u := range durationUnits {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
		if err != nil {
			return 0, fmt.Errorf("sim: bad duration %q: %v", s, err)
		}
		// ParseFloat accepts "inf"/"NaN"/overflowing exponents; converting
		// those (or anything past MaxInt64 ns) to Duration would wrap to a
		// huge negative value with no error.
		if math.IsNaN(v) || v < 0 {
			return 0, fmt.Errorf("sim: negative or NaN duration %q", s)
		}
		ns := v * float64(u.scale)
		if ns >= float64(math.MaxInt64) {
			return 0, fmt.Errorf("sim: duration %q overflows", s)
		}
		return Duration(ns), nil
	}
	return 0, fmt.Errorf("sim: duration %q needs a unit (ns, us, ms, s)", s)
}
