// Package sim provides the deterministic simulation primitives used by every
// other package in this repository: a virtual clock, a seedable fast RNG, and
// latency distributions with reproducible jitter.
//
// Nothing in this package (or anything built on it) sleeps or reads wall-clock
// time. All experiments advance a virtual clock measured in nanoseconds, so a
// run is a pure function of its configuration and seed.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's unit so values print naturally, but it is a distinct type:
// virtual time must never be mixed with wall-clock time.
type Duration int64

// Common virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Microseconds reports d as a floating-point count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports d as a floating-point count of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a floating-point count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit, e.g. "4.30µs".
func (d Duration) String() string {
	switch {
	case d < 0:
		return fmt.Sprintf("-%s", (-d).String())
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Time is an instant of virtual time, nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is a monotonically advancing virtual clock. The zero value is a clock
// at time zero, ready to use. Reads and advances are atomic, so a clock may
// be shared across goroutines (the sharded leap.Memory fault path advances
// one clock from several stripes concurrently); single-threaded use behaves
// exactly as before. A Clock must not be copied after first use.
type Clock struct {
	now atomic.Int64
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time is monotone.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		return Time(c.now.Add(int64(d)))
	}
	return Time(c.now.Load())
}

// AdvanceTo moves the clock forward to t if t is in the future; a clock never
// moves backwards.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
