module leap

go 1.24
