package leap

import (
	"bytes"
	"testing"

	"leap/internal/prefetch"
)

// fillPage writes a deterministic pattern for page pg into buf.
func fillPage(pg PageID, buf []byte) {
	for i := range buf {
		x := uint64(pg)*0x9E3779B97F4A7C15 + uint64(i)
		buf[i] = byte(x ^ (x >> 17))
	}
}

// TestMemoryRoundTrip pushes a working set several times the local budget
// through the runtime and reads every byte back: evictions must write real
// images to the remote substrate and faults must fetch them intact.
func TestMemoryRoundTrip(t *testing.T) {
	mem, err := Open(WithSeed(7), WithCacheCapacity(64), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	const pages = 512
	buf := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < pages; pg++ {
		fillPage(pg, buf)
		if _, err := mem.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
			t.Fatalf("WriteAt page %d: %v", pg, err)
		}
	}
	got := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < pages; pg++ {
		fillPage(pg, buf)
		if _, err := mem.ReadAt(got, int64(pg)*RemotePageSize); err != nil {
			t.Fatalf("ReadAt page %d: %v", pg, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("page %d corrupted after eviction round trip", pg)
		}
	}
	st := mem.Stats()
	if st.Swapouts == 0 {
		t.Fatal("working set 8x the budget produced no swapouts")
	}
	if st.Host.Writes == 0 || st.Host.Reads == 0 {
		t.Fatalf("no real remote traffic: host stats %+v", st.Host)
	}
}

// TestMemoryUnalignedIO crosses page boundaries with both ReadAt and
// WriteAt (read-modify-write of partially covered pages).
func TestMemoryUnalignedIO(t *testing.T) {
	mem, err := Open(WithSeed(3), WithCacheCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	msg := []byte("leap prefetches remote memory with majority trends")
	off := int64(5*RemotePageSize - 7) // straddles pages 4 and 5
	if n, err := mem.WriteAt(msg, off); err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := mem.ReadAt(got, off); err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	// Untouched memory reads as zeros.
	zero := make([]byte, 64)
	far := make([]byte, 64)
	if _, err := mem.ReadAt(far, 1<<30); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(far, zero) {
		t.Fatal("never-written memory did not read as zeros")
	}
}

// runScan drives a fixed access pattern through a fresh Memory with the
// named prefetcher and returns its stats.
func runScan(t *testing.T, pfName string, stride int64) MemoryStats {
	t.Helper()
	pf, err := NewPrefetcher(pfName)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(WithSeed(11), WithCacheCapacity(256), WithPrefetcher(pf), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	const accesses = 4000
	const span = 1 << 20
	pg := PageID(0)
	for i := 0; i < accesses; i++ {
		if _, err := mem.Get(pg); err != nil {
			t.Fatalf("Get(%d): %v", pg, err)
		}
		pg = (pg + PageID(stride)) % span
	}
	return mem.Stats()
}

// TestMemoryLeapBeatsNone is the acceptance gate: over a real in-proc host,
// the Leap prefetcher achieves a strictly higher hit ratio than no
// prefetching on both the sequential and the stride workloads, and the
// comparison is reproducible from the fixed seed.
func TestMemoryLeapBeatsNone(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stride int64
	}{
		{"sequential", 1},
		{"stride-10", 10},
	} {
		leap := runScan(t, "leap", tc.stride)
		none := runScan(t, "none", tc.stride)
		if leap.HitRatio <= none.HitRatio {
			t.Errorf("%s: leap hit ratio %.4f not strictly above none %.4f",
				tc.name, leap.HitRatio, none.HitRatio)
		}
		if leap.Accuracy == 0 || leap.Coverage == 0 {
			t.Errorf("%s: leap accuracy %.3f coverage %.3f, want > 0",
				tc.name, leap.Accuracy, leap.Coverage)
		}
		if none.PrefetchIssued != 0 {
			t.Errorf("%s: none issued %d prefetches", tc.name, none.PrefetchIssued)
		}
	}
}

// TestMemoryDeterminism replays the same run twice and expects identical
// stats and identical virtual end time.
func TestMemoryDeterminism(t *testing.T) {
	run := func() (MemoryStats, int64) {
		mem, err := Open(WithSeed(99), WithCacheCapacity(128), WithQueueDepth(4))
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		buf := make([]byte, 3*RemotePageSize)
		for i := 0; i < 200; i++ {
			off := int64((i * 37) % 1024 * RemotePageSize)
			if _, err := mem.WriteAt(buf[:100], off); err != nil {
				t.Fatal(err)
			}
			if _, err := mem.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
		return mem.Stats(), int64(mem.Now())
	}
	a, ta := run()
	b, tb := run()
	if a != b {
		t.Fatalf("stats diverged:\n%+v\n%+v", a, b)
	}
	if ta != tb {
		t.Fatalf("virtual time diverged: %d vs %d", ta, tb)
	}
}

// TestMemorySharedLeapPrefetcher checks the predictor actually learns
// through the runtime's fault path: the window must grow under sequential
// hits (NoteHit feedback) and the predictor must have seen trends.
func TestMemorySharedLeapPrefetcher(t *testing.T) {
	lp := NewLeapPrefetcher(PredictorConfig{})
	mem, err := Open(WithSeed(5), WithCacheCapacity(128), WithPrefetcher(lp))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	for pg := PageID(0); pg < 2000; pg++ {
		if _, err := mem.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	st := lp.ProcessStats()[prefetch.PID(0)]
	if st.TrendHits == 0 {
		t.Fatal("sequential scan produced no trend detections")
	}
	if st.WindowGrowths == 0 {
		t.Fatal("prefetch hits produced no window growth")
	}
}
