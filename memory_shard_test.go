package leap

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"

	"leap/internal/core"
	"leap/internal/load"
	"leap/internal/remote"
	"leap/internal/sim"
)

// shardParityRun executes one deterministic mixed read/write trace
// (load.Sequential: stamped writes, verified read-your-writes, cross-client
// reads) over a fresh Memory opened with the given extra options and
// returns everything the parity oracle compares: the full Stats block,
// every client's aggregated predictor statistics, and the final page image
// of the whole span. The shard invariant is checked before returning.
func shardParityRun(t *testing.T, cfg load.Config, extra ...Option) (MemoryStats, []core.Stats, [][]byte) {
	t.Helper()
	opts := append([]Option{
		WithSeed(131), WithCacheCapacity(96), WithQueueDepth(8), WithConcurrency(8),
	}, extra...)
	mem, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	res, err := load.Sequential(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
	if err := mem.CheckShardInvariants(core.PageID(cfg.Span())); err != nil {
		t.Fatal(err)
	}
	st := mem.Stats()
	preds := make([]core.Stats, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		preds[c], _ = mem.Client(c).PredictorStats()
	}
	image := make([][]byte, cfg.Span())
	for pg := range image {
		image[pg] = make([]byte, remote.PageSize)
		if _, err := mem.ReadAt(image[pg], int64(pg)*remote.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	return st, preds, image
}

// TestShardedOneMatchesSerial is the sharding parity oracle, in the spirit
// of TestConcurrencyOneMatchesPR4. On a shared deterministic trace:
//
//   - WithShards(1) must be bit-identical to the default (pre-sharding
//     serialized) runtime: equal Stats, equal per-client predictor
//     statistics, equal page bytes.
//   - WithShards(4) driven by the same single goroutine must produce the
//     same page image and the same access/fault totals (striping moves
//     pages between predictors, it must not invent or lose work), must
//     never trip the single-flight table single-threaded, and two
//     identical sharded runs must be bit-identical to each other.
func TestShardedOneMatchesSerial(t *testing.T) {
	cfg := load.Config{Clients: 3, OpsPerClient: 400, PagesPerClient: 48, Seed: 99}

	base, basePreds, baseImage := shardParityRun(t, cfg)
	one, onePreds, oneImage := shardParityRun(t, cfg, WithShards(1))

	if base != one {
		t.Errorf("WithShards(1) stats diverged from serialized runtime:\nserial  %+v\nshards1 %+v", base, one)
	}
	for c := range basePreds {
		if basePreds[c] != onePreds[c] {
			t.Errorf("client %d predictor stats diverged:\nserial  %+v\nshards1 %+v", c, basePreds[c], onePreds[c])
		}
	}
	for pg := range baseImage {
		if !bytes.Equal(baseImage[pg], oneImage[pg]) {
			t.Fatalf("WithShards(1) page %d bytes diverged from serialized runtime", pg)
		}
	}

	sharded, shardedPreds, shardedImage := shardParityRun(t, cfg, WithShards(4))
	sharded2, shardedPreds2, shardedImage2 := shardParityRun(t, cfg, WithShards(4))

	// Determinism: a sharded run is a pure function of its options + trace.
	if sharded != sharded2 {
		t.Errorf("two identical WithShards(4) runs diverged:\nfirst  %+v\nsecond %+v", sharded, sharded2)
	}
	for c := range shardedPreds {
		if shardedPreds[c] != shardedPreds2[c] {
			t.Errorf("client %d predictor stats nondeterministic across WithShards(4) runs", c)
		}
	}
	for pg := range shardedImage {
		if !bytes.Equal(shardedImage[pg], shardedImage2[pg]) {
			t.Fatalf("WithShards(4) page %d bytes nondeterministic across runs", pg)
		}
	}

	// Correctness vs the serial oracle: same bytes, same work totals. (Stats
	// beyond the totals legitimately differ: each stripe's predictor sees
	// only its own fault stream, so prefetch windows land differently.)
	for pg := range baseImage {
		if !bytes.Equal(baseImage[pg], shardedImage[pg]) {
			t.Fatalf("WithShards(4) page %d bytes diverged from serialized runtime", pg)
		}
	}
	if sharded.Accesses != base.Accesses {
		t.Errorf("sharded run accesses %d, serialized %d — striping must not invent or lose accesses",
			sharded.Accesses, base.Accesses)
	}
	if sharded.ResidentHits+sharded.Faults != base.ResidentHits+base.Faults {
		t.Errorf("sharded hits+faults %d+%d, serialized %d+%d",
			sharded.ResidentHits, sharded.Faults, base.ResidentHits, base.Faults)
	}
	if sharded.DemandWaits != 0 {
		t.Errorf("single-goroutine sharded run recorded %d demand waits", sharded.DemandWaits)
	}
}

// runShardedInvariantCase executes one seeded property case over a sharded
// Memory whose whole shape (stripe count, cache budget, queue depth,
// overlap bound) derives from the seed: a deterministic pseudo-random
// interleave of per-client streams with read-your-writes verified on every
// read, the single-owner shard invariant checked every 64 operations — a
// page must never be resident (or cached, or in flight) outside its owning
// stripe, including across eviction at shard boundaries — and the final
// image checked against the sequential oracle.
func runShardedInvariantCase(t *testing.T, seed uint64) {
	t.Helper()
	shardCounts := []int{2, 4, 8}
	qdepths := []int{1, 2, 8}
	concs := []int{1, 2, 8}
	fail := func(err error) {
		t.Fatalf("case seed %#x: %v\nreplay with LEAP_SEED=%#x go test -run TestMemoryShardedInvariantsProperty",
			seed, err, seed)
	}
	mem, err := Open(
		WithSeed(seed*0x9E3779B97F4A7C15+1),
		WithShards(shardCounts[seed%uint64(len(shardCounts))]),
		// A small budget keeps eviction constant, so frames cross the
		// resident/cached boundary (and leave) on every stripe.
		WithCacheCapacity(32+int(seed%3)*48),
		WithQueueDepth(qdepths[(seed/3)%uint64(len(qdepths))]),
		WithConcurrency(concs[(seed/9)%uint64(len(concs))]),
	)
	if err != nil {
		fail(err)
	}
	defer mem.Close()

	cfg := load.Config{Clients: 3, OpsPerClient: 250, PagesPerClient: 48, Seed: seed}
	span := core.PageID(cfg.Span())
	streams := make([]*load.Stream, cfg.Clients)
	ios := make([]*MemoryClient, cfg.Clients)
	for i := range streams {
		streams[i] = load.NewStream(i, cfg)
		ios[i] = mem.Client(i)
	}
	// The same seeded interleave load.Sequential uses, unrolled so the shard
	// invariant can be checked mid-run, not only at the end.
	sched := sim.NewRNG(cfg.Seed ^ 0xC0FFEE)
	remaining := cfg.Clients
	ops := 0
	for remaining > 0 {
		c := sched.Intn(cfg.Clients)
		s := streams[c]
		if s.Done() {
			continue
		}
		if err := s.Step(ios[c]); err != nil {
			fail(err)
		}
		if s.Done() {
			remaining--
		}
		if ops++; ops%64 == 0 {
			if err := mem.CheckShardInvariants(span); err != nil {
				fail(err)
			}
		}
	}
	if err := mem.Flush(); err != nil {
		fail(err)
	}
	if err := load.VerifyFinal(mem, cfg, streams); err != nil {
		fail(err)
	}
	if err := mem.CheckShardInvariants(span); err != nil {
		fail(err)
	}
	if st := mem.Stats(); st.DemandWaits != 0 {
		fail(fmt.Errorf("single-goroutine case recorded %d demand waits", st.DemandWaits))
	}
}

// TestMemoryShardedInvariantsProperty is the seeded-schedule property test
// for the sharded fault path: across random stripe counts, budgets and
// overlap bounds, no page ever appears outside its owning shard (checked
// mid-run and after eviction churn), read-your-writes holds through
// shard-boundary eviction, and the final state matches the sequential
// oracle. A failure prints its case seed; replay exactly that case with
// LEAP_SEED=<seed>.
func TestMemoryShardedInvariantsProperty(t *testing.T) {
	if env := os.Getenv("LEAP_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_SEED: %v", err)
		}
		runShardedInvariantCase(t, seed)
		return
	}
	cases := 40
	if testing.Short() {
		cases = 12
	}
	for i := 0; i < cases; i++ {
		runShardedInvariantCase(t, 0x51AD<<16|uint64(i))
	}
}

// TestMemoryShardedStress extends the race-enabled stress gate across the
// shards × clients × goroutines matrix: real goroutines hammer a sharded
// Memory through per-client handles, with exact access accounting (one page
// touch per op, none lost or duplicated across stripes), the final-image
// oracle, and the single-owner shard invariant checked once the dust
// settles. Run it under `go test -race`.
func TestMemoryShardedStress(t *testing.T) {
	grid := []struct{ shards, clients, goroutines int }{
		{2, 4, 4},
		{4, 8, 8},
		{8, 8, 8},
	}
	if testing.Short() {
		grid = grid[:2]
	}
	for _, g := range grid {
		g := g
		t.Run(fmt.Sprintf("shards=%d_clients=%d_goroutines=%d", g.shards, g.clients, g.goroutines), func(t *testing.T) {
			cfg := load.Config{
				Clients: g.clients, Goroutines: g.goroutines,
				OpsPerClient: 1000, PagesPerClient: 64, Seed: 47 + uint64(g.shards),
			}
			if testing.Short() {
				cfg.OpsPerClient = 400
			}
			mem, err := Open(WithSeed(17+uint64(g.shards)), WithShards(g.shards),
				WithCacheCapacity(128), WithQueueDepth(8), WithConcurrency(g.goroutines))
			if err != nil {
				t.Fatal(err)
			}
			defer mem.Close()
			res, err := load.Drive(mem, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := mem.Flush(); err != nil {
				t.Fatal(err)
			}
			st := mem.Stats()
			if want := int64(cfg.Clients) * int64(cfg.OpsPerClient); st.Accesses != want {
				t.Errorf("accesses %d, want exactly %d (one page touch per op, none lost or duplicated)", st.Accesses, want)
			}
			if st.Faults == 0 || st.Host.Reads == 0 || st.Host.Writes == 0 {
				t.Errorf("stress run produced no remote traffic: %+v", st)
			}
			if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
				t.Fatal(err)
			}
			if err := mem.CheckShardInvariants(core.PageID(cfg.Span())); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedOptionValidation pins WithShards's edges: counts round up to
// the next power of two, non-positive means one stripe, a supplied
// prefetcher instance cannot be striped, and the capacity budget must cover
// every stripe.
func TestShardedOptionValidation(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		mem, err := Open(WithShards(c.ask))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", c.ask, err)
		}
		if got := mem.Shards(); got != c.want {
			t.Errorf("WithShards(%d) ran %d stripes, want %d", c.ask, got, c.want)
		}
		mem.Close()
	}
	if _, err := Open(WithShards(2), WithPrefetcher(NewLeapPrefetcher(PredictorConfig{}))); err == nil {
		t.Error("WithPrefetcher + WithShards(2) must be rejected: one prefetcher instance cannot be striped")
	}
	if _, err := Open(WithShards(8), WithCacheCapacity(4)); err == nil {
		t.Error("capacity 4 over 8 shards must be rejected: every stripe needs at least one page")
	}
}

// TestShardedHitPathZeroAllocs gates the sharded hit path at zero heap
// allocations per operation: a resident hit takes one shard lock, touches
// the stripe's LRU and copies bytes — nothing on that path may allocate
// (the bench gate enforces the same bound on BenchmarkMemoryGetHit*).
func TestShardedHitPathZeroAllocs(t *testing.T) {
	mem, err := Open(WithShards(4), WithCacheCapacity(512), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	const hot = 128
	buf := make([]byte, remote.PageSize)
	// Two sweeps: fault the hot set in, then re-touch it so every page is
	// resident in its stripe before measuring.
	for sweep := 0; sweep < 2; sweep++ {
		for pg := int64(0); pg < hot; pg++ {
			if _, err := mem.ReadAt(buf, pg*remote.PageSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	var pg int64
	var rerr error
	allocs := testing.AllocsPerRun(400, func() {
		pg = (pg + 1) % hot
		_, rerr = mem.ReadAt(buf, pg*remote.PageSize)
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if allocs != 0 {
		t.Errorf("sharded hit path allocates %.1f times per op, want 0", allocs)
	}
}
