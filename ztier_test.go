package leap

import (
	"os"
	"strconv"
	"testing"

	"leap/internal/core"
	"leap/internal/load"
	"leap/internal/remote"
)

// runZtierReadYourWritesCase executes one seeded property case over a
// runtime with the compressed victim tier enabled: a deterministic
// interleave of stamped writes and verified reads whose shape (cache
// budget, tier budget, queue depth, shard count) derives from the seed.
// Tight budgets force every page through evict → seal → fault → unseal
// cycles; every read is verified as it happens (read-your-writes) and the
// final image must match the sequential oracle replay.
func runZtierReadYourWritesCase(t *testing.T, seed uint64) {
	t.Helper()
	qdepths := []int{1, 2, 8}
	shardCounts := []int{1, 2, 4}
	opts := []Option{
		WithSeed(seed*0x9E3779B97F4A7C15 + 1),
		WithCacheCapacity(64 + int(seed%3)*32),
		WithQueueDepth(qdepths[seed%uint64(len(qdepths))]),
		WithCompressedTier(int64(16+seed%48) * remote.PageSize),
		WithWireCompression(true),
	}
	if n := shardCounts[(seed/7)%uint64(len(shardCounts))]; n > 1 {
		opts = append(opts, WithShards(n))
	}
	mem, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cfg := load.Config{Clients: 3, OpsPerClient: 250, PagesPerClient: 48, Seed: seed}
	res, err := load.Sequential(mem, cfg)
	if err == nil {
		err = mem.Flush()
	}
	if err == nil {
		err = load.VerifyFinal(mem, cfg, res.Streams)
	}
	if err == nil {
		err = mem.CheckShardInvariants(core.PageID(cfg.Span()))
	}
	if err != nil {
		t.Fatalf("case seed %#x: %v\nreplay with LEAP_SEED=%#x go test -run TestMemoryZtierReadYourWritesProperty",
			seed, err, seed)
	}
	if st := mem.Stats(); !st.Ztier.Enabled || st.Ztier.Seals == 0 {
		t.Fatalf("case seed %#x: tier never engaged (%+v) — the case shape lost its bite", seed, st.Ztier)
	}
}

// TestMemoryZtierReadYourWritesProperty is the compressed-tier
// read-your-writes property gate: with the working set overflowing the
// frame budget, dirty victims are sealed into the tier and later faults
// must get the exact bytes back (a sealed dirty page's only fresh image is
// the local compressed one). A failure prints its case seed; replay exactly
// that case with LEAP_SEED=<seed>.
func TestMemoryZtierReadYourWritesProperty(t *testing.T) {
	if env := os.Getenv("LEAP_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_SEED: %v", err)
		}
		runZtierReadYourWritesCase(t, seed)
		return
	}
	cases := 30
	if testing.Short() {
		cases = 10
	}
	for i := 0; i < cases; i++ {
		runZtierReadYourWritesCase(t, 0x21E4<<16|uint64(i))
	}
}

// TestMemoryZtierOffIsIdentical pins the compatibility bar: explicitly
// disabling the tier and wire compression must be indistinguishable —
// equal Stats block, field for field — from a runtime that never heard of
// them. This is what keeps every pre-tier figure byte-identical.
func TestMemoryZtierOffIsIdentical(t *testing.T) {
	run := func(extra ...Option) MemoryStats {
		opts := append([]Option{
			WithSeed(311), WithCacheCapacity(96), WithQueueDepth(8),
		}, extra...)
		mem, err := Open(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		cfg := load.Config{Clients: 3, OpsPerClient: 300, PagesPerClient: 48, Seed: 19}
		res, err := load.Sequential(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
			t.Fatal(err)
		}
		return mem.Stats()
	}
	base := run()
	off := run(WithCompressedTier(0), WithWireCompression(false))
	if base != off {
		t.Fatalf("tier-off runtime diverged from default:\n%+v\n---\n%+v", base, off)
	}
	if base.Evictions == 0 || base.WritebackPages == 0 {
		t.Fatalf("eviction counters never moved (evictions=%d writebacks=%d) — the satellite counters are dead",
			base.Evictions, base.WritebackPages)
	}
	if base.Ztier != (MemoryZtierStats{}) {
		t.Fatalf("tier-off run reports tier activity: %+v", base.Ztier)
	}
}

// TestMemoryZtierConcurrentStress is the race-enabled tier stress gate:
// concurrent clients hammer a sharded runtime whose frame budget is far
// under the span, so seal/unseal and overflow writeback race with the
// fault path. Run it under `go test -race` (the CI race job repeats it).
func TestMemoryZtierConcurrentStress(t *testing.T) {
	cfg := load.Config{Clients: 6, Goroutines: 6, OpsPerClient: 1200, PagesPerClient: 64, Seed: 97}
	if testing.Short() {
		cfg.Clients, cfg.Goroutines, cfg.OpsPerClient = 4, 4, 500
	}
	mem, err := Open(
		WithSeed(23), WithCacheCapacity(96), WithQueueDepth(8),
		WithConcurrency(cfg.Goroutines), WithShards(4),
		WithCompressedTier(64*remote.PageSize), WithWireCompression(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	res, err := load.Drive(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
	if err := mem.CheckShardInvariants(core.PageID(cfg.Span())); err != nil {
		t.Fatal(err)
	}
	st := mem.Stats()
	if !st.Ztier.Enabled || st.Ztier.Seals == 0 {
		t.Errorf("stress run never sealed a page: %+v", st.Ztier)
	}
	// Stamped pages are xorshift-random — incompressible by design — so the
	// codec's stored fallback holds the ratio just under 1. What matters
	// here is that it never collapses (a broken accounting would show 0).
	if st.Ztier.RawBytes > 0 && (st.Ztier.Ratio <= 0.5 || st.Ztier.Ratio > 1.01) {
		t.Errorf("stress run realized compression ratio %.4f, want ~1 for incompressible stamps", st.Ztier.Ratio)
	}
}

// TestMemoryWireCompressionIntegrity checks the on-wire leg end to end.
// Phase one: the stamped (incompressible) load must survive compressed
// batch frames exactly — stored-fallback framing, worst case for the
// codec. Phase two: semi-compressible record pages must actually save wire
// bytes.
func TestMemoryWireCompressionIntegrity(t *testing.T) {
	mem, err := Open(WithSeed(59), WithCacheCapacity(48), WithQueueDepth(8), WithWireCompression(true))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cfg := load.Config{Clients: 2, OpsPerClient: 400, PagesPerClient: 64, Seed: 7}
	res, err := load.Sequential(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
	st := mem.Stats()
	if st.Host.CompressedFrames == 0 {
		t.Fatalf("no batched frame traveled compressed: %+v", st.Host)
	}

	// Semi-compressible phase: repeated text records with a noise byte.
	host0 := st.Host
	span := cfg.Span()
	buf := make([]byte, remote.PageSize)
	for pg := int64(0); pg < 128; pg++ {
		const record = "record-deadbeef!"
		x := uint64(pg)*0x9E3779B97F4A7C15 + 1
		for off := 0; off+len(record) <= len(buf); off += len(record) {
			copy(buf[off:], record)
			x = x*6364136223846793005 + 1442695040888963407
			buf[off+12] = byte(x >> 33)
		}
		if _, err := mem.WriteAt(buf, (span+pg)*remote.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	st = mem.Stats()
	rawDelta := st.Host.WireRawBytes - host0.WireRawBytes
	compDelta := st.Host.WireCompressedBytes - host0.WireCompressedBytes
	if rawDelta <= 0 {
		t.Fatalf("record phase moved no compressed frames: %+v", st.Host)
	}
	if compDelta >= rawDelta {
		t.Fatalf("wire compression never paid on record pages: %dB compressed vs %dB raw", compDelta, rawDelta)
	}
}

// TestMemoryZtierOptionValidation pins the option-misuse errors.
func TestMemoryZtierOptionValidation(t *testing.T) {
	if _, err := Open(WithCompressedTier(-1)); err == nil {
		t.Fatal("negative tier budget accepted")
	}
	host, err := remote.NewHost(remote.HostConfig{}, []remote.Transport{
		remote.NewInProc(remote.NewAgent(64, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithRemoteHost(host), WithWireCompression(true)); err == nil {
		t.Fatal("WithWireCompression accepted alongside WithRemoteHost (the host's own Compress field governs)")
	}
}
