// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the DESIGN.md ablations and microbenchmarks of the hot paths. Each
// figure bench runs its experiment driver end to end and reports the
// figure's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction report. cmd/leapbench prints the full
// tables.
package leap

import (
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"testing"

	"leap/internal/core"
	"leap/internal/experiments"
	"leap/internal/prefetch"
	"leap/internal/sim"
)

// benchScale keeps benches fast while preserving every qualitative shape.
var benchScale = experiments.Small

func BenchmarkFig1Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchScale, 42)
		b.ReportMetric(r.Staging.Microseconds(), "staging-µs")
		b.ReportMetric(r.RDMA.Microseconds(), "rdma-µs")
		b.ReportMetric(r.LegacyMissMean.Microseconds(), "legacy-miss-µs")
		b.ReportMetric(r.LeanMissMean.Microseconds(), "lean-miss-µs")
	}
}

func BenchmarkFig2DefaultPathCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchScale, 42)
		b.ReportMetric(r.Stride["d-vmm"].P50.Microseconds(), "dvmm-stride-p50-µs")
		b.ReportMetric(r.Stride["disk"].P50.Microseconds(), "disk-stride-p50-µs")
	}
}

func BenchmarkFig3PatternMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchScale, 42)
		for _, row := range r.Rows {
			if row.App == "powergraph" {
				b.ReportMetric(row.MajorityW8.Sequential*100, "pg-majW8-seq-%")
				b.ReportMetric(row.StrictW8.Sequential*100, "pg-strictW8-seq-%")
			}
		}
	}
}

func BenchmarkFig4EvictionWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchScale, 42)
		b.ReportMetric(r.LazyWait.P50.Milliseconds(), "lazy-wait-p50-ms")
		b.ReportMetric(r.EagerWait.Max.Microseconds(), "eager-wait-max-µs")
	}
}

func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RenderTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig7LeapCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchScale, 42)
		stride := r.Cells["d-vmm/stride-10"]
		seq := r.Cells["d-vmm/sequential"]
		b.ReportMetric(stride.MedianGain(), "stride-p50-gain-x")
		b.ReportMetric(stride.TailGain(), "stride-p99-gain-x")
		b.ReportMetric(seq.MedianGain(), "seq-p50-gain-x")
	}
}

func BenchmarkFig8aBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8a(benchScale, 42)
		b.ReportMetric(r.Full.P50.Microseconds(), "full-p50-µs")
		b.ReportMetric(r.PathOnly.P50.Microseconds(), "path-p50-µs")
	}
}

func BenchmarkFig8bSlowStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8b(benchScale, 42)
		hdd, ssd := r.Gains()
		b.ReportMetric(hdd, "hdd-gain-x")
		b.ReportMetric(ssd, "ssd-gain-x")
	}
}

func BenchmarkFig9CacheEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchScale, 42)
		leapRow, _ := r.Row("leap")
		ra, _ := r.Row("readahead")
		b.ReportMetric(float64(leapRow.CacheMiss), "leap-misses")
		b.ReportMetric(float64(ra.CacheMiss), "readahead-misses")
		b.ReportMetric(float64(leapRow.CacheAdds), "leap-adds")
	}
}

func BenchmarkFig10PrefetcherQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchScale, 42)
		leapRow, _ := r.Row("leap")
		b.ReportMetric(leapRow.Coverage*100, "leap-coverage-%")
		b.ReportMetric(leapRow.Accuracy*100, "leap-accuracy-%")
		b.ReportMetric(leapRow.Timeliness.P50.Microseconds(), "leap-timeliness-p50-µs")
	}
}

func BenchmarkFig11Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchScale, 42)
		pgStock, _ := r.Cell("powergraph", "d-vmm", 0.5)
		pgLeap, _ := r.Cell("powergraph", "d-vmm+leap", 0.5)
		vdStock, _ := r.Cell("voltdb", "d-vmm", 0.5)
		vdLeap, _ := r.Cell("voltdb", "d-vmm+leap", 0.5)
		b.ReportMetric(float64(pgStock.Completion)/float64(pgLeap.Completion), "pg50-completion-gain-x")
		b.ReportMetric(vdLeap.OpsPerSec/vdStock.OpsPerSec, "voltdb50-tps-gain-x")
	}
}

func BenchmarkFig12CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchScale, 42)
		unlimited, _ := r.Cell("powergraph", "no limit")
		tiny, _ := r.Cell("powergraph", "3.2MB")
		b.ReportMetric(
			(float64(tiny.Completion)/float64(unlimited.Completion)-1)*100,
			"pg-3.2MB-degradation-%")
	}
}

func BenchmarkFig13Concurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchScale, 42)
		var minGain, maxGain float64
		for i, row := range r.Rows {
			g := row.Gain()
			if i == 0 || g < minGain {
				minGain = g
			}
			if g > maxGain {
				maxGain = g
			}
		}
		b.ReportMetric(minGain, "min-gain-x")
		b.ReportMetric(maxGain, "max-gain-x")
	}
}

// --- DESIGN.md ablations ---

func BenchmarkAblationMajorityVsStrict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMajorityVsStrict(benchScale, 42)
		maj, _ := r.Row("majority")
		strict, _ := r.Row("strict")
		b.ReportMetric(maj.Coverage*100, "majority-coverage-%")
		b.ReportMetric(strict.Coverage*100, "strict-coverage-%")
	}
}

func BenchmarkAblationWindowDoubling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationWindowDoubling(benchScale, 42)
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationEviction(benchScale, 42)
		eager, _ := r.Row("eager")
		lazy, _ := r.Row("lazy")
		b.ReportMetric(float64(lazy.Completion)/float64(eager.Completion), "eager-gain-x")
	}
}

func BenchmarkAblationIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationIsolation(benchScale, 42)
		iso, _ := r.Row("isolated")
		sh, _ := r.Row("shared")
		b.ReportMetric(iso.Coverage*100, "isolated-coverage-%")
		b.ReportMetric(sh.Coverage*100, "shared-coverage-%")
	}
}

func BenchmarkAblationHistorySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationHistorySize(benchScale, 42)
		if len(r.Rows) != 5 {
			b.Fatal("missing sweep rows")
		}
	}
}

func BenchmarkAblationMaxWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMaxWindow(benchScale, 42)
		if len(r.Rows) != 5 {
			b.Fatal("missing sweep rows")
		}
	}
}

func BenchmarkAblationThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationThrottling(benchScale, 42)
		leapRow, _ := r.Row("leap")
		nnl, _ := r.Row("nextnline")
		b.ReportMetric(float64(leapRow.Issued), "leap-issued")
		b.ReportMetric(float64(nnl.Issued), "flood-issued")
		b.ReportMetric(nnl.QueueDelayP99.Microseconds(), "flood-queue-p99-µs")
	}
}

// --- hot-path microbenchmarks ---

func BenchmarkPredictorFaultPath(b *testing.B) {
	p := core.NewPredictor(core.Config{})
	buf := make([]core.PageID, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.OnFault(core.PageID(i), buf[:0])
	}
	_ = buf
}

func BenchmarkFindTrend(b *testing.B) {
	h := core.NewAccessHistory(32)
	rng := sim.NewRNG(1)
	for i := 0; i < 32; i++ {
		h.Push(int64(rng.Intn(5)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FindTrend(h, 2)
	}
}

func BenchmarkMajorityVote(b *testing.B) {
	xs := make([]int64, 32)
	rng := sim.NewRNG(2)
	for i := range xs {
		xs[i] = int64(rng.Intn(3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MajorityVote(xs)
	}
}

func BenchmarkPrefetcherComparison(b *testing.B) {
	for _, name := range prefetch.Names() {
		b.Run(name, func(b *testing.B) {
			p, err := prefetch.New(name)
			if err != nil {
				b.Fatal(err)
			}
			var buf []prefetch.PageID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = p.OnAccess(1, prefetch.PageID(i), true, buf[:0])
			}
			_ = buf
		})
	}
}

func BenchmarkMemoryGetHit(b *testing.B) {
	// The runtime's resident-hit path — the Get an application pays when
	// its page is local. Must stay allocation-free: pagemap lookup, LRU
	// touch, counter bumps, nothing else.
	mem, err := Open(WithSeed(42), WithCacheCapacity(256), WithQueueDepth(8))
	if err != nil {
		b.Fatal(err)
	}
	defer mem.Close()
	buf := make([]byte, RemotePageSize)
	const hot = 64 // well inside the budget: every Get below is a hit
	for pg := int64(0); pg < hot; pg++ {
		if _, err := mem.WriteAt(buf, pg*RemotePageSize); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := mem.Get(PageID(i % hot))
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

func BenchmarkMemoryGetZtierHit(b *testing.B) {
	// The compressed-tier hit path — the Get an application pays when its
	// page was sealed into the local victim tier rather than shipped
	// remote: pagemap miss, one decompress into a recycled frame, LRU
	// insert, one victim sealed back in its place. Gated A/B by
	// scripts/bench_ab.sh (recorded in BENCH_9.json) and must stay
	// allocation-free in steady state, like the resident hit path.
	const frames = 64
	const span = 192 // 3× the frame budget: every Get below misses residency
	mem, err := Open(
		WithSeed(42), WithCacheCapacity(frames), WithQueueDepth(8),
		WithCompressedTier(int64(span)*RemotePageSize),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer mem.Close()
	buf := make([]byte, RemotePageSize)
	for pg := int64(0); pg < span; pg++ {
		// Semi-compressible record pages: the codec takes its LZ path, so
		// the benchmark times real compression work, not the stored
		// fallback memcpy.
		const record = "record-deadbeef!"
		x := uint64(pg)*0x9E3779B97F4A7C15 + 1
		for off := 0; off+len(record) <= len(buf); off += len(record) {
			copy(buf[off:], record)
			x = x*6364136223846793005 + 1442695040888963407
			buf[off+12] = byte(x >> 33)
		}
		if _, err := mem.WriteAt(buf, pg*RemotePageSize); err != nil {
			b.Fatal(err)
		}
	}
	// One warm scan settles the steady state: every page resident or
	// sealed, frame and tier-entry free lists populated.
	for pg := int64(0); pg < span; pg++ {
		if _, err := mem.Get(PageID(pg)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := mem.Get(PageID(i % span))
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

func BenchmarkMemoryConcurrentGet(b *testing.B) {
	// The concurrent hit path: parallel goroutines, each with its own
	// Client handle, Get-ing resident pages. Pays one lock round trip and
	// one 4KB copy per op — and must stay allocation-free, like the
	// single-threaded hit path.
	mem, err := Open(WithSeed(42), WithCacheCapacity(256), WithQueueDepth(8))
	if err != nil {
		b.Fatal(err)
	}
	defer mem.Close()
	buf := make([]byte, RemotePageSize)
	const hot = 64 // well inside the budget: every Get below is a hit
	for pg := int64(0); pg < hot; pg++ {
		if _, err := mem.WriteAt(buf, pg*RemotePageSize); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := mem.Client(0)
		i := 0
		for pb.Next() {
			data, err := c.Get(PageID(i % hot))
			if err != nil {
				b.Fatal(err)
			}
			_ = data
			i++
		}
	})
}

func BenchmarkMemoryGetHitParallel(b *testing.B) {
	// The sharded hit path under real parallelism: a GOMAXPROCS sweep over
	// {1, 2, 4, 8} with the runtime split WithShards(8), so each worker's
	// Get takes only its stripe's lock. This is the measured multicore
	// scaling curve of the fault path — recorded in BENCH_8.json and gated
	// A/B by scripts/bench_ab.sh — and every sweep point must stay
	// allocation-free, exactly like the serialized hit path above. Procs
	// beyond the machine's cores degenerate to the core count; the sweep
	// still records them so the curve's flat tail is visible in the data.
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
			mem, err := Open(WithSeed(42), WithShards(8), WithCacheCapacity(512), WithQueueDepth(8))
			if err != nil {
				b.Fatal(err)
			}
			defer mem.Close()
			buf := make([]byte, RemotePageSize)
			const hot = 128 // 16 pages per stripe: every Get below is a hit
			for pg := int64(0); pg < hot; pg++ {
				if _, err := mem.WriteAt(buf, pg*RemotePageSize); err != nil {
					b.Fatal(err)
				}
			}
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := mem.Client(0)
				// Stagger workers across stripes (17 is odd, so offsets
				// cover every shard) instead of marching them in lockstep
				// over the same pages.
				i := int(worker.Add(1)) * 17
				for pb.Next() {
					data, err := c.Get(PageID(i & (hot - 1)))
					if err != nil {
						b.Fatal(err)
					}
					_ = data
					i++
				}
			})
		})
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// End-to-end simulator speed: accesses simulated per wall second.
	gen, _ := NewAppWorkload("powergraph", 42)
	res, err := Simulate(SimConfig{
		System:           SystemDVMMLeap,
		WarmupAccesses:   1000,
		MeasuredAccesses: int64(b.N) + 1,
		Seed:             42,
	}, []Workload{{PID: 1, Generator: gen, MemoryLimitPages: gen.Pages() / 2, PreloadPages: -1}})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}
