package leap

import (
	"strings"
	"testing"
)

func TestPredictorFacade(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	for i := 0; i < 40; i++ {
		p.Record(PageID(i * 10))
	}
	cands := p.Predict(PageID(400))
	if len(cands) == 0 || cands[0] != 410 {
		t.Fatalf("facade predictor candidates = %v", cands)
	}
}

func TestMajorityVoteFacade(t *testing.T) {
	if v, ok := MajorityVote([]int64{3, 3, 5, 3}); !ok || v != 3 {
		t.Fatalf("MajorityVote = (%d, %v)", v, ok)
	}
}

func TestPrefetcherFacade(t *testing.T) {
	names := PrefetcherNames()
	if len(names) != 7 {
		t.Fatalf("PrefetcherNames = %v", names)
	}
	for _, n := range names {
		p, err := NewPrefetcher(n)
		if err != nil || p.Name() != n {
			t.Fatalf("NewPrefetcher(%q): %v", n, err)
		}
	}
	if _, err := NewPrefetcher("bogus"); err == nil {
		t.Fatal("bogus prefetcher accepted")
	}
	lp := NewLeapPrefetcher(PredictorConfig{HistorySize: 16})
	if lp.Name() != "leap" {
		t.Fatal("leap prefetcher misnamed")
	}
}

func TestSimulateStrideComparison(t *testing.T) {
	run := func(sys System) SimResult {
		res, err := Simulate(SimConfig{
			System:           sys,
			WarmupAccesses:   2000,
			MeasuredAccesses: 10000,
			Seed:             7,
		}, []Workload{{
			PID:              1,
			Generator:        NewStrideWorkload(1<<20, 10, 7),
			MemoryLimitPages: 4096,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dvmm := run(SystemDVMM)
	leap := run(SystemDVMMLeap)
	if leap.Latency.P50 >= dvmm.Latency.P50 {
		t.Fatalf("leap p50 %v not below d-vmm %v", leap.Latency.P50, dvmm.Latency.P50)
	}
	if ratio := float64(dvmm.Latency.P50) / float64(leap.Latency.P50); ratio < 20 {
		t.Fatalf("stride median gain %.1f×, want >= 20×", ratio)
	}
}

func TestSimulateAppWorkload(t *testing.T) {
	gen, err := NewAppWorkload("voltdb", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		System:           SystemDVMMLeap,
		WarmupAccesses:   1000,
		MeasuredAccesses: 6000,
		Seed:             3,
	}, []Workload{{
		PID:              1,
		Generator:        gen,
		MemoryLimitPages: gen.Pages() / 2,
		PreloadPages:     -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerProc[0].OpsPerSec <= 0 {
		t.Fatal("no throughput computed")
	}
	if _, err := NewAppWorkload("nosuch", 1); err == nil {
		t.Fatal("bogus app accepted")
	} else if !strings.Contains(err.Error(), "powergraph") {
		t.Fatalf("error %v does not list the valid names", err)
	}
}

func TestSimulateCustomPrefetcher(t *testing.T) {
	pf, _ := NewPrefetcher("nextnline")
	res, err := Simulate(SimConfig{
		System:           SystemDVMM,
		Prefetcher:       pf,
		WarmupAccesses:   500,
		MeasuredAccesses: 3000,
		Seed:             5,
	}, []Workload{{
		PID:              1,
		Generator:        NewSequentialWorkload(1<<20, 5),
		MemoryLimitPages: 4096,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchIssued == 0 {
		t.Fatal("custom prefetcher not used")
	}
}

func TestRemoteMemoryFacade(t *testing.T) {
	agents := []*RemoteAgent{NewRemoteAgent(16, 0), NewRemoteAgent(16, 0)}
	trs := []RemoteTransport{NewInProcTransport(agents[0]), NewInProcTransport(agents[1])}
	host, err := NewRemoteHost(RemoteHostConfig{SlabPages: 16, Replicas: 2, Seed: 1}, trs)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	page := make([]byte, RemotePageSize)
	page[0] = 0xEE
	if err := host.WritePage(5, page); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, RemotePageSize)
	if err := host.ReadPage(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE {
		t.Fatal("remote round trip corrupted data")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}, nil); err == nil {
		t.Fatal("empty workload list accepted")
	}
}
