// Command leapsim runs one workload × system × prefetcher combination
// through the remote-paging simulator and prints the outcome: latency
// percentiles, cache behaviour, prefetcher quality, and throughput.
//
// Usage:
//
//	leapsim -workload powergraph -system d-vmm+leap -mem 0.5
//	leapsim -workload stride-10 -system d-vmm -prefetcher readahead
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"leap"
)

func main() {
	workloadName := flag.String("workload", "powergraph",
		"workload: powergraph|numpy|voltdb|memcached|sequential|stride-N")
	system := flag.String("system", "d-vmm+leap", "system: disk|ssd|d-vmm|d-vmm+leap")
	prefetcher := flag.String("prefetcher", "", "override prefetcher: leap|readahead|stride|nextnline|none")
	memFrac := flag.Float64("mem", 0.5, "local memory as a fraction of the working set")
	accesses := flag.Int64("accesses", 200000, "measured accesses")
	warmup := flag.Int64("warmup", 20000, "warmup accesses (not measured)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	gen, touched, err := makeGenerator(*workloadName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leapsim:", err)
		os.Exit(2)
	}

	cfg := leap.SimConfig{
		WarmupAccesses:   *warmup,
		MeasuredAccesses: *accesses,
		Seed:             *seed,
	}
	switch *system {
	case "disk":
		cfg.System = leap.SystemDisk
	case "ssd":
		cfg.System = leap.SystemSSD
	case "d-vmm":
		cfg.System = leap.SystemDVMM
	case "d-vmm+leap":
		cfg.System = leap.SystemDVMMLeap
	default:
		fmt.Fprintf(os.Stderr, "leapsim: unknown system %q\n", *system)
		os.Exit(2)
	}
	if *prefetcher != "" {
		pf, err := leap.NewPrefetcher(*prefetcher)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leapsim:", err)
			os.Exit(2)
		}
		cfg.Prefetcher = pf
	}

	// The memory limit scales with the pages the workload actually touches;
	// microbenchmarks stride over a sparse span. A cyclic scan defeats LRU,
	// so preloading only makes sense for the hot/cold application models.
	limit := int64(float64(touched) * *memFrac)
	if limit < 1 {
		limit = 1
	}
	preload := int64(-1)
	if touched != gen.Pages() {
		preload = 0
	}
	res, err := leap.Simulate(cfg, []leap.Workload{{
		PID:              1,
		Generator:        gen,
		MemoryLimitPages: limit,
		PreloadPages:     preload,
	}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "leapsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s system=%s mem=%.0f%% (%d pages)\n",
		gen.Name(), *system, *memFrac*100, limit)
	fmt.Printf("completion        %v\n", res.Makespan)
	fmt.Printf("faults            %d (resident hits %d)\n", res.Faults, res.ResidentHits)
	fmt.Printf("latency           p50=%v p95=%v p99=%v mean=%v\n",
		res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Latency.Mean)
	fmt.Printf("cache             adds=%d misses=%d pollution=%d\n",
		res.CacheAdds, res.CacheMisses, res.Pollution)
	fmt.Printf("prefetch          issued=%d accuracy=%.1f%% coverage=%.1f%%\n",
		res.PrefetchIssued, res.Accuracy*100, res.Coverage*100)
	for _, p := range res.PerProc {
		fmt.Printf("throughput        %.0f ops/sec (%d ops)\n", p.OpsPerSec, p.Ops)
	}
}

// makeGenerator parses the workload flag and reports the generator plus the
// number of distinct pages it touches (the basis for the memory limit).
func makeGenerator(name string, seed uint64) (leap.Generator, int64, error) {
	if gen, err := leap.NewAppWorkload(name, seed); err == nil {
		return gen, gen.Pages(), nil
	}
	const span = 1 << 20
	if name == "sequential" {
		return leap.NewSequentialWorkload(span, seed), span / 2, nil
	}
	if rest, ok := strings.CutPrefix(name, "stride-"); ok {
		k, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || k < 1 {
			return nil, 0, fmt.Errorf("bad stride workload %q", name)
		}
		return leap.NewStrideWorkload(span, k, seed), span / k / 2, nil
	}
	return nil, 0, fmt.Errorf("unknown workload %q", name)
}
