// Command leaptrace captures, inspects, and replays page-access traces in
// the binary format of internal/trace.
//
// Usage:
//
//	leaptrace gen -workload powergraph -n 100000 -out pg.trace
//	leaptrace info -in pg.trace
//	leaptrace replay -in pg.trace -system d-vmm+leap -mem 0.5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"leap"
	"leap/internal/analysis"
	"leap/internal/core"
	"leap/internal/trace"
	"leap/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "leaptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: leaptrace <gen|info|replay> [flags]")
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "powergraph", "workload to capture")
	n := fs.Int64("n", 100000, "accesses to capture")
	out := fs.String("out", "out.trace", "output file")
	gz := fs.Bool("gzip", false, "gzip-compress the trace")
	seed := fs.Uint64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, ok := workload.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q", *name)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *gz {
		cw := trace.NewCompressedWriter(f)
		gen := workload.NewApp(prof, *seed)
		for i := int64(0); i < *n; i++ {
			a := gen.Next()
			if err := cw.Write(trace.Record{PID: 1, Page: a.Page, Think: a.Think}); err != nil {
				return err
			}
		}
		if err := cw.Close(); err != nil {
			return err
		}
	} else if err := trace.Capture(f, workload.NewApp(prof, *seed), 1, *n); err != nil {
		return err
	}
	fmt.Printf("captured %d accesses of %s to %s\n", *n, *name, *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("info: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadAllAuto(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	pages := make([]core.PageID, len(records))
	var maxPage core.PageID
	pids := map[int]bool{}
	for i, r := range records {
		pages[i] = r.Page
		if r.Page > maxPage {
			maxPage = r.Page
		}
		pids[int(r.PID)] = true
	}
	fmt.Printf("records:   %d\n", len(records))
	fmt.Printf("processes: %d\n", len(pids))
	fmt.Printf("max page:  %d (%.1f MB working set)\n",
		maxPage, float64(maxPage+1)*4096/(1<<20))
	fmt.Printf("pattern mix (strict W2):   %s\n", analysis.ClassifyStrict(pages, 2))
	fmt.Printf("pattern mix (strict W8):   %s\n", analysis.ClassifyStrict(pages, 8))
	fmt.Printf("pattern mix (majority W8): %s\n", analysis.ClassifyMajority(pages, 8))
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	system := fs.String("system", "d-vmm+leap", "system: disk|ssd|d-vmm|d-vmm+leap")
	memFrac := fs.Float64("mem", 0.5, "memory fraction of the trace's working set")
	seed := fs.Uint64("seed", 42, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("replay: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ReadAllAuto(f)
	if err != nil {
		return err
	}
	gen, err := trace.NewReplay(*in, records, 1)
	if err != nil {
		return err
	}

	cfg := leap.SimConfig{
		WarmupAccesses:   int64(len(records)) / 10,
		MeasuredAccesses: int64(len(records)),
		Seed:             *seed,
	}
	switch *system {
	case "disk":
		cfg.System = leap.SystemDisk
	case "ssd":
		cfg.System = leap.SystemSSD
	case "d-vmm":
		cfg.System = leap.SystemDVMM
	case "d-vmm+leap":
		cfg.System = leap.SystemDVMMLeap
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	limit := int64(float64(gen.Pages()) * *memFrac)
	if limit < 1 {
		limit = 1
	}
	res, err := leap.Simulate(cfg, []leap.Workload{{
		PID: 1, Generator: gen, MemoryLimitPages: limit, PreloadPages: -1,
	}})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d accesses on %s @%.0f%% memory\n", len(records), *system, *memFrac*100)
	fmt.Printf("completion %v, faults %d, p50 %v, p99 %v, coverage %.1f%%\n",
		res.Makespan, res.Faults, res.Latency.P50, res.Latency.P99, res.Coverage*100)
	return nil
}
