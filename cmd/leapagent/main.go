// Command leapagent runs a standalone remote-memory agent: it donates
// memory as fixed-size slabs and serves page reads/writes over TCP using
// the binary wire protocol in internal/remote. Hosts (see the remoteswap
// example) map slabs onto one or more agents with replication.
//
// Usage:
//
//	leapagent -listen :7070 -slab-pages 4096 -max-slabs 64
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"leap/internal/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	slabPages := flag.Int("slab-pages", remote.DefaultSlabPages, "pages per slab (4KB each)")
	maxSlabs := flag.Int("max-slabs", 0, "maximum slabs to donate (0 = unlimited)")
	flag.Parse()

	agent := remote.NewAgent(*slabPages, *maxSlabs)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("leapagent: listen %s: %v", *listen, err)
	}
	donation := "unlimited"
	if *maxSlabs > 0 {
		donation = fmt.Sprintf("%d slabs (%d MB)",
			*maxSlabs, *maxSlabs**slabPages*remote.PageSize/(1<<20))
	}
	log.Printf("leapagent: serving on %s, slab=%d pages, donation=%s",
		l.Addr(), *slabPages, donation)
	log.Fatal(agent.Serve(l))
}
