// Command docscheck enforces the repository's godoc contract: every
// exported symbol of the listed packages must carry a doc comment. It
// parses source with go/ast (no build, no network) and prints one line per
// violation; a non-zero exit fails `make docs-check` and CI.
//
// Usage:
//
//	docscheck [package-dir ...]   # defaults to "."
//
// Checked declarations: exported funcs and methods (methods on exported
// receivers), exported types, and exported const/var specs. A doc comment
// on the enclosing GenDecl covers its specs (the `const ( ... )` block
// idiom), and struct fields/interface methods are exempt — field-level docs
// are encouraged but the gate stops at declarations.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: docscheck [package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	violations := 0
	for _, dir := range dirs {
		violations += checkDir(dir)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported symbols\n", violations)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and reports undocumented
// exported declarations.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
		return 1
	}
	n := 0
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			n += checkFile(fset, path, file)
		}
	}
	return n
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, path string, file *ast.File) int {
	n := 0
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s is exported but has no doc comment\n", p.Filename, p.Line, what, name)
		n++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				recv := receiverName(d.Recv.List[0].Type)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				name = recv + "." + name
			}
			report(d.Pos(), "func", name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, id := range s.Names {
						if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(id.Pos(), d.Tok.String(), id.Name)
						}
					}
				}
			}
		}
	}
	return n
}

// receiverName unwraps a method receiver type expression to its type name.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
