// Command leapbench regenerates every table and figure of the paper's
// evaluation on the simulation substrates. Each figure prints the same
// rows/series the paper reports, next to the paper's headline values.
//
// Independent figures run concurrently (each driver owns its seed and
// machines), with output printed in presentation order and per-figure wall
// times reported, so results are byte-identical at any -parallel setting.
//
// Usage:
//
//	leapbench                  # run everything at full scale, in parallel
//	leapbench -list            # print the figure inventory with descriptions
//	leapbench -fig 7           # one figure
//	leapbench -fig 1,7,9       # a comma-separated subset
//	leapbench -fig resilience  # chaos harness: faults, failover, repair
//	leapbench -fig elastic     # self-healing cluster vs static under a ramp
//	leapbench -fig runtime     # end-to-end leap.Memory over a live cluster
//	leapbench -fig selfheal    # runtime under mid-run agent faults, plane on/off
//	leapbench -fig ensemble    # online per-client prefetcher selection ablation
//	leapbench -fig ablations   # the DESIGN.md ablation sweeps
//	leapbench -scale small     # quick pass (test-sized runs)
//	leapbench -parallel 1      # sequential (same output, more wall time)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"leap/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figures to run: comma-separated subset of 1,2,3,4,table1,7,8a,8b,9,10,11,12,13,resilience,scaling,elastic,runtime,selfheal,ztier,ensemble,ablations, or all (see -list)")
	scaleName := flag.String("scale", "full", "run scale: full or small")
	seed := flag.Uint64("seed", 42, "simulation seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max figures running concurrently (1 = sequential)")
	list := flag.Bool("list", false, "print the available figure names with one-line descriptions and exit")
	flag.Parse()

	if *list {
		fmt.Print(experiments.Describe())
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.Full
	case "small":
		scale = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "leapbench: unknown scale %q (want full or small)\n", *scaleName)
		os.Exit(2)
	}

	known := experiments.Figures()
	var names []string
	if strings.EqualFold(*fig, "all") {
		names = known
	} else {
		for _, want := range strings.Split(strings.ToLower(*fig), ",") {
			want = strings.TrimSpace(want)
			found := false
			for _, n := range known {
				if n == want {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "leapbench: unknown figure %q\n", want)
				os.Exit(2)
			}
			names = append(names, want)
		}
	}

	start := time.Now()
	var serial time.Duration
	n := 0
	// Results stream in presentation order as each figure (and everything
	// before it) completes, so long tail figures don't buffer earlier output.
	experiments.ForEach(names, scale, *seed, *parallel, func(r experiments.FigureResult) {
		fmt.Println(r.Output)
		fmt.Printf("[%s done in %v]\n\n", r.Name, r.Elapsed.Round(time.Millisecond))
		serial += r.Elapsed
		n++
	})
	if n > 1 {
		fmt.Printf("[%d figures in %v wall (%v of figure time, parallel=%d)]\n",
			n, time.Since(start).Round(time.Millisecond),
			serial.Round(time.Millisecond), *parallel)
	}
}
