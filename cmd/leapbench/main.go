// Command leapbench regenerates every table and figure of the paper's
// evaluation on the simulation substrates. Each figure prints the same
// rows/series the paper reports, next to the paper's headline values.
//
// Usage:
//
//	leapbench                  # run everything at full scale
//	leapbench -fig 7           # one figure
//	leapbench -fig ablations   # the DESIGN.md ablation sweeps
//	leapbench -scale small     # quick pass (test-sized runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"leap/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to run: 1,2,3,4,table1,7,8a,8b,9,10,11,12,13,ablations,all")
	scaleName := flag.String("scale", "full", "run scale: full or small")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.Full
	case "small":
		scale = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "leapbench: unknown scale %q (want full or small)\n", *scaleName)
		os.Exit(2)
	}

	runners := []struct {
		name string
		run  func()
	}{
		{"1", func() { fmt.Println(experiments.Fig1(scale, *seed)) }},
		{"2", func() { fmt.Println(experiments.Fig2(scale, *seed)) }},
		{"3", func() { fmt.Println(experiments.Fig3(scale, *seed)) }},
		{"4", func() { fmt.Println(experiments.Fig4(scale, *seed)) }},
		{"table1", func() { fmt.Println(experiments.RenderTable1()) }},
		{"7", func() { fmt.Println(experiments.Fig7(scale, *seed)) }},
		{"8a", func() { fmt.Println(experiments.Fig8a(scale, *seed)) }},
		{"8b", func() { fmt.Println(experiments.Fig8b(scale, *seed)) }},
		{"9", func() { fmt.Println(experiments.Fig9(scale, *seed)) }},
		{"10", func() { fmt.Println(experiments.Fig10(scale, *seed)) }},
		{"11", func() { fmt.Println(experiments.Fig11(scale, *seed)) }},
		{"12", func() { fmt.Println(experiments.Fig12(scale, *seed)) }},
		{"13", func() { fmt.Println(experiments.Fig13(scale, *seed)) }},
		{"ablations", func() {
			fmt.Println(experiments.AblationMajorityVsStrict(scale, *seed))
			fmt.Println(experiments.AblationWindowDoubling(scale, *seed))
			fmt.Println(experiments.AblationEviction(scale, *seed))
			fmt.Println(experiments.AblationIsolation(scale, *seed))
			fmt.Println(experiments.AblationHistorySize(scale, *seed))
			fmt.Println(experiments.AblationMaxWindow(scale, *seed))
			fmt.Println(experiments.AblationThrottling(scale, *seed))
		}},
	}

	want := strings.ToLower(*fig)
	matched := false
	for _, r := range runners {
		if want != "all" && want != r.name {
			continue
		}
		matched = true
		start := time.Now()
		r.run()
		fmt.Printf("[%s done in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "leapbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
