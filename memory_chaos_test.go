package leap

import (
	"bytes"
	"errors"
	"testing"

	"leap/internal/remote"
	"leap/internal/sim"
)

// TestMemorySurvivesAgentCrashRepair drives a Memory client over a
// four-agent cluster behind fault-injecting transports: an agent crashes
// with its memory wiped mid-workload, reads fail over to replicas, repair
// re-replicates onto survivors, the agent rejoins empty and is repaired
// onto again — and every byte the client ever wrote stays readable and
// correct throughout. This is the chaos-harness scenario of PR 2 run
// against the unified runtime instead of the raw host.
func TestMemorySurvivesAgentCrashRepair(t *testing.T) {
	const agents = 4
	const pages = 512
	rng := sim.NewRNG(31)
	agentObjs := make([]*remote.Agent, agents)
	faults := make([]*remote.FaultTransport, agents)
	transports := make([]RemoteTransport, agents)
	for i := range transports {
		agentObjs[i] = remote.NewAgent(64, 0)
		faults[i] = remote.NewFaultTransport(i, remote.NewInProc(agentObjs[i]), rng.Fork(uint64(i)))
		transports[i] = faults[i]
	}
	host, err := NewRemoteHost(RemoteHostConfig{
		SlabPages: 64, Replicas: 2, QueueDepth: 8, Seed: 9,
	}, transports)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	mem, err := Open(WithRemoteHost(host), WithSeed(13), WithCacheCapacity(64), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, RemotePageSize)
	got := make([]byte, RemotePageSize)
	writeAll := func(from, to PageID) {
		for pg := from; pg < to; pg++ {
			fillPage(pg, buf)
			if _, err := mem.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
				t.Fatalf("write page %d: %v", pg, err)
			}
		}
	}
	verifyAll := func(phase string, upto PageID) {
		for pg := PageID(0); pg < upto; pg++ {
			fillPage(pg, buf)
			if _, err := mem.ReadAt(got, int64(pg)*RemotePageSize); err != nil {
				t.Fatalf("%s: read page %d: %v", phase, pg, err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatalf("%s: page %d corrupted", phase, pg)
			}
		}
	}

	// Phase 1: working set far past the local budget, so real images land
	// on the cluster; verify through the fault path.
	writeAll(0, pages)
	verifyAll("healthy", pages)

	// Phase 2: crash agent 1 — process gone, memory wiped. The client must
	// keep running on replicas (some reads fail over).
	faults[1].SetMode(remote.FaultMode{Crashed: true})
	agentObjs[1].Reset()
	verifyAll("during crash", pages)
	if st := host.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers recorded across a dead agent: %+v", st)
	}

	// Phase 3: mark it failed and repair — replication is restored on the
	// survivors; the client keeps writing new pages meanwhile.
	if err := host.MarkFailed(1); err != nil {
		t.Fatal(err)
	}
	if _, err := host.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	if n := host.UnderReplicated(); n != 0 {
		t.Fatalf("repair left %d slabs under-replicated", n)
	}
	writeAll(pages, pages+128)
	verifyAll("post-repair", pages+128)

	// Phase 4: the agent restarts empty and rejoins; repair re-replicates
	// its rendezvous share back onto it.
	faults[1].SetMode(remote.FaultMode{})
	if err := host.MarkRecovered(1); err != nil {
		t.Fatal(err)
	}
	if _, err := host.RepairSlabs(); err != nil {
		t.Fatal(err)
	}
	verifyAll("after rejoin", pages+128)
	if err := mem.Flush(); err != nil {
		t.Fatalf("flush after chaos: %v", err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("close after chaos: %v", err)
	}
}

// TestMemoryAllReplicasDown pins the failure mode the runtime must report
// rather than mask: when every replica of a page's slab is unreachable, a
// demand read surfaces an error instead of corrupt bytes, and recovery
// restores service.
func TestMemoryAllReplicasDown(t *testing.T) {
	const agents = 2 // replicas == agents: killing both kills every slab copy
	rng := sim.NewRNG(5)
	faults := make([]*remote.FaultTransport, agents)
	transports := make([]RemoteTransport, agents)
	for i := range transports {
		faults[i] = remote.NewFaultTransport(i, remote.NewInProc(remote.NewAgent(64, 0)), rng.Fork(uint64(i)))
		transports[i] = faults[i]
	}
	host, err := NewRemoteHost(RemoteHostConfig{SlabPages: 64, Replicas: 2, Seed: 3}, transports)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	mem, err := Open(WithRemoteHost(host), WithSeed(1), WithCacheCapacity(16), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	buf := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < 256; pg++ {
		fillPage(pg, buf)
		if _, err := mem.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
			t.Fatal(err)
		}
	}
	for i := range faults {
		faults[i].SetMode(remote.FaultMode{Partitioned: true})
	}
	// Some evicted page must now be unreachable on demand.
	var sawErr bool
	for pg := PageID(0); pg < 256 && !sawErr; pg++ {
		if _, err := mem.Get(pg); err != nil {
			if !errors.Is(err, remote.ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("total partition produced no read error")
	}
	// Heal: service resumes with intact data (partition kept agent memory).
	for i := range faults {
		faults[i].SetMode(remote.FaultMode{})
	}
	got := make([]byte, RemotePageSize)
	for pg := PageID(0); pg < 256; pg++ {
		fillPage(pg, buf)
		if _, err := mem.ReadAt(got, int64(pg)*RemotePageSize); err != nil {
			t.Fatalf("post-heal read page %d: %v", pg, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("post-heal page %d corrupted", pg)
		}
	}
}
