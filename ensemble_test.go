package leap

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"leap/internal/core"
	"leap/internal/load"
	"leap/internal/remote"
)

// TestEnsembleOneArmMatchesFixed is the parity oracle: an ensemble pinned
// to a single arm must be indistinguishable — equal Stats, field for field,
// once the Ensemble block itself is zeroed — from running that arm as the
// fixed policy via WithPrefetcherFactory. This is what pins "the selected
// arm sees the real engine feedback": any skew in the OnAccess or
// OnPrefetchHit stream the arm observes shows up as diverging counters.
func TestEnsembleOneArmMatchesFixed(t *testing.T) {
	for _, arm := range []string{"leap", "ghb", "stride", "readahead", "nextnline"} {
		t.Run(arm, func(t *testing.T) {
			run := func(extra Option) MemoryStats {
				mem, err := Open(
					WithSeed(613), WithCacheCapacity(96), WithQueueDepth(8), WithShards(2),
					extra,
				)
				if err != nil {
					t.Fatal(err)
				}
				defer mem.Close()
				cfg := load.Config{Clients: 3, OpsPerClient: 400, PagesPerClient: 48, Seed: 31}
				res, err := load.Sequential(mem, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := mem.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
					t.Fatal(err)
				}
				return mem.Stats()
			}
			fixed := run(WithPrefetcherFactory(func() Prefetcher {
				p, err := NewPrefetcher(arm)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}))
			ens := run(WithEnsemble(EnsembleConfig{Arms: []string{arm}}))
			if !ens.Ensemble.Enabled || ens.Ensemble.Switches != 0 {
				t.Fatalf("one-arm ensemble block off or switching: %+v", ens.Ensemble)
			}
			if fixed.Ensemble != (MemoryEnsembleStats{}) {
				t.Fatalf("fixed policy reports ensemble activity: %+v", fixed.Ensemble)
			}
			ens.Ensemble = MemoryEnsembleStats{}
			if fixed != ens {
				t.Fatalf("one-arm ensemble diverged from fixed %s:\n%+v\n---\n%+v", arm, fixed, ens)
			}
		})
	}
}

// TestMemoryEnsembleOffIsIdentical pins the compatibility bar: a runtime
// without WithEnsemble must be field-for-field identical to the pre-selector
// runtime, and its Stats.Ensemble block must stay zero.
func TestMemoryEnsembleOffIsIdentical(t *testing.T) {
	run := func(extra ...Option) MemoryStats {
		opts := append([]Option{
			WithSeed(311), WithCacheCapacity(96), WithQueueDepth(8),
		}, extra...)
		mem, err := Open(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		cfg := load.Config{Clients: 3, OpsPerClient: 300, PagesPerClient: 48, Seed: 19}
		res, err := load.Sequential(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
			t.Fatal(err)
		}
		return mem.Stats()
	}
	base := run()
	factory := run(WithPrefetcherFactory(func() Prefetcher { return NewLeapPrefetcher(PredictorConfig{}) }))
	if base != factory {
		t.Fatalf("WithPrefetcherFactory(leap) diverged from the default runtime:\n%+v\n---\n%+v", base, factory)
	}
	if base.Ensemble != (MemoryEnsembleStats{}) {
		t.Fatalf("ensemble-off run reports selector activity: %+v", base.Ensemble)
	}
}

// adviseStamp writes a page image derived from (pg, v) — the same stamp the
// verifying read recomputes.
func adviseStamp(pg PageID, v uint64, buf []byte) {
	x := uint64(pg)*0x9E3779B97F4A7C15 + v | 1
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// runAdviseReadYourWritesCase executes one seeded property case: three
// clients interleave stamped writes, verified reads, and seed-derived
// Advise calls (all four advices, arbitrary ranges) over a runtime whose
// shape (budget, queue depth, shard count, compressed tier) derives from
// the seed, with the ensemble selecting per client underneath. Every read
// must return the last stamp written to that page — no hint may ever
// surface stale bytes, whatever evict/seal/fault cycle the page is in.
func runAdviseReadYourWritesCase(t *testing.T, seed uint64) {
	t.Helper()
	qdepths := []int{1, 2, 8}
	shardCounts := []int{1, 2, 4}
	opts := []Option{
		WithSeed(seed*0x9E3779B97F4A7C15 + 7),
		WithCacheCapacity(64 + int(seed%3)*32),
		WithQueueDepth(qdepths[seed%uint64(len(qdepths))]),
		WithCompressedTier(int64(16+seed%48) * remote.PageSize),
		WithEnsemble(EnsembleConfig{EpochFaults: 16, SwitchStreak: 1}),
	}
	if n := shardCounts[(seed/7)%uint64(len(shardCounts))]; n > 1 {
		opts = append(opts, WithShards(n))
	}
	mem, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	const span = 256
	clients := []*MemoryClient{mem.Client(1), mem.Client(2), mem.Client(3)}
	oracle := make(map[PageID]uint64)
	var written []PageID
	buf := make([]byte, RemotePageSize)
	want := make([]byte, RemotePageSize)
	rnd := seed*2862933555777941757 + 3037000493
	next := func(n uint64) uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd % n
	}
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("case seed %#x: %s\nreplay with LEAP_SEED=%#x go test -run TestMemoryAdviseReadYourWritesProperty",
			seed, fmt.Sprintf(format, args...), seed)
	}
	for op := 0; op < 900; op++ {
		c := clients[next(uint64(len(clients)))]
		switch next(10) {
		case 0, 1: // advise: all four kinds, seed-derived ranges
			a := Advice(next(4))
			start := PageID(next(span))
			n := int(next(40)) + 1
			if err := c.Advise(a, start, n); err != nil {
				fail("Advise(%d, %d, %d): %v", a, start, n, err)
			}
		case 2, 3, 4: // stamped write
			pg := PageID(next(span))
			v := rnd
			adviseStamp(pg, v, buf)
			if _, err := c.WriteAt(buf, int64(pg)*RemotePageSize); err != nil {
				fail("WriteAt(%d): %v", pg, err)
			}
			if _, seen := oracle[pg]; !seen {
				written = append(written, pg)
			}
			oracle[pg] = v
		default: // verified read (read-your-writes, whatever tier the page is in)
			if len(written) == 0 {
				continue
			}
			pg := written[next(uint64(len(written)))]
			got, err := c.Get(pg)
			if err != nil {
				fail("Get(%d): %v", pg, err)
			}
			adviseStamp(pg, oracle[pg], want)
			for i := range want {
				if got[i] != want[i] {
					fail("page %d byte %d = %#x, want %#x (stale image surfaced)", pg, i, got[i], want[i])
				}
			}
		}
	}
	if err := mem.Flush(); err != nil {
		fail("Flush: %v", err)
	}
	for _, pg := range written {
		if _, err := mem.ReadAt(buf, int64(pg)*RemotePageSize); err != nil {
			fail("final ReadAt(%d): %v", pg, err)
		}
		adviseStamp(pg, oracle[pg], want)
		for i := range want {
			if buf[i] != want[i] {
				fail("final image of page %d diverged at byte %d", pg, i)
			}
		}
	}
	if err := mem.CheckShardInvariants(span); err != nil {
		fail("shard invariants: %v", err)
	}
	if st := mem.Stats(); !st.Ensemble.Enabled || st.Ensemble.Clients == 0 {
		fail("ensemble never engaged: %+v", st.Ensemble)
	}
}

// TestMemoryAdviseReadYourWritesProperty is the hint-API safety gate:
// madvise-style hints may steer prefetch issue, never data. A failure
// prints its case seed; replay exactly that case with LEAP_SEED=<seed>.
func TestMemoryAdviseReadYourWritesProperty(t *testing.T) {
	if env := os.Getenv("LEAP_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("bad LEAP_SEED: %v", err)
		}
		runAdviseReadYourWritesCase(t, seed)
		return
	}
	cases := 25
	if testing.Short() {
		cases = 8
	}
	for i := 0; i < cases; i++ {
		runAdviseReadYourWritesCase(t, 0xAD5E<<16|uint64(i))
	}
}

// TestMemoryAdviseDeterminism pins the determinism property: the same seed
// drives the same advise/write/read interleave to bit-identical Stats and
// selection histories across runs.
func TestMemoryAdviseDeterminism(t *testing.T) {
	run := func() (MemoryStats, []SelectionEvent) {
		mem, err := Open(
			WithSeed(1009), WithCacheCapacity(64), WithQueueDepth(4), WithShards(2),
			WithEnsemble(EnsembleConfig{EpochFaults: 16, SwitchStreak: 1}),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		c := mem.Client(1)
		buf := make([]byte, RemotePageSize)
		for pg := int64(0); pg < 200; pg++ {
			if _, err := c.WriteAt(buf, pg*RemotePageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Advise(AdviseSequential, 0, 100); err != nil {
			t.Fatal(err)
		}
		if err := c.Advise(AdviseRandom, 100, 50); err != nil {
			t.Fatal(err)
		}
		if err := c.Advise(AdviseWillNeed, 150, 20); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1200; i++ {
			pg := PageID(i*7%200) ^ PageID(i&3)
			if _, err := c.Get(pg % 200); err != nil {
				t.Fatal(err)
			}
		}
		return mem.Stats(), c.SelectionHistory()
	}
	s1, h1 := run()
	s2, h2 := run()
	if s1 != s2 {
		t.Fatalf("same seed produced different Stats:\n%+v\n---\n%+v", s1, s2)
	}
	if len(h1) != len(h2) {
		t.Fatalf("selection histories diverged: %+v vs %+v", h1, h2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("selection histories diverged at %d: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	if len(h1) == 0 {
		t.Fatal("no selection history recorded under WithEnsemble")
	}
}

// TestMemoryEnsembleStress is the race-enabled selector stress gate:
// concurrent clients hammer a sharded ensemble runtime while another
// goroutine streams Advise calls at the same ranges, so hint-table writes,
// WillNeed prefetches and selector epochs race the fault path. Run it under
// `go test -race` (the CI race job repeats it).
func TestMemoryEnsembleStress(t *testing.T) {
	cfg := load.Config{Clients: 6, Goroutines: 6, OpsPerClient: 1000, PagesPerClient: 64, Seed: 83}
	if testing.Short() {
		cfg.Clients, cfg.Goroutines, cfg.OpsPerClient = 4, 4, 400
	}
	mem, err := Open(
		WithSeed(29), WithCacheCapacity(96), WithQueueDepth(8),
		WithConcurrency(cfg.Goroutines), WithShards(4),
		WithEnsemble(EnsembleConfig{EpochFaults: 32, SwitchStreak: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := mem.Client(2)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a := Advice(i % 4)
			if err := c.Advise(a, PageID(i%128), 1+i%32); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	res, err := load.Drive(mem, cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := load.VerifyFinal(mem, cfg, res.Streams); err != nil {
		t.Fatal(err)
	}
	if err := mem.CheckShardInvariants(core.PageID(cfg.Span())); err != nil {
		t.Fatal(err)
	}
	st := mem.Stats()
	if !st.Ensemble.Enabled || st.Ensemble.Clients == 0 || st.Ensemble.Epochs == 0 {
		t.Errorf("stress run never exercised the selector: %+v", st.Ensemble)
	}
}

// TestMemoryEnsembleOptionValidation pins the option- and hint-misuse
// errors.
func TestMemoryEnsembleOptionValidation(t *testing.T) {
	pf, err := NewPrefetcher("stride")
	if err != nil {
		t.Fatal(err)
	}
	factory := func() Prefetcher { p, _ := NewPrefetcher("stride"); return p }
	if _, err := Open(WithPrefetcher(pf), WithPrefetcherFactory(factory)); err == nil {
		t.Fatal("WithPrefetcher accepted alongside WithPrefetcherFactory")
	}
	if _, err := Open(WithEnsemble(EnsembleConfig{}), WithPrefetcher(pf)); err == nil {
		t.Fatal("WithEnsemble accepted alongside WithPrefetcher")
	}
	if _, err := Open(WithEnsemble(EnsembleConfig{}), WithPrefetcherFactory(factory)); err == nil {
		t.Fatal("WithEnsemble accepted alongside WithPrefetcherFactory")
	}
	if _, err := Open(WithEnsemble(EnsembleConfig{Arms: []string{"bogus"}})); err == nil {
		t.Fatal("unknown ensemble arm accepted")
	}
	if _, err := Open(WithPrefetcherFactory(func() Prefetcher { return nil })); err == nil {
		t.Fatal("nil-returning prefetcher factory accepted")
	}
	if _, err := Open(WithShards(2), WithPrefetcher(pf)); err == nil {
		t.Fatal("shared WithPrefetcher accepted on a sharded runtime")
	}
	// WithPrefetcherFactory is exactly the sharded replacement.
	mem, err := Open(WithShards(2), WithPrefetcherFactory(factory))
	if err != nil {
		t.Fatal(err)
	}
	c := mem.Client(1)
	if err := c.Advise(AdviseSequential, -1, 4); err == nil {
		t.Fatal("negative advise start accepted")
	}
	if err := c.Advise(AdviseSequential, 0, 0); err == nil {
		t.Fatal("empty advise range accepted")
	}
	if err := c.Advise(Advice(99), 0, 4); err == nil {
		t.Fatal("unknown advice accepted")
	}
	mem.Close()
}

// TestMemoryAdviseSteersIssue checks the hints actually steer candidate
// issue: a random-advised scan issues no prefetches, the same scan
// sequential-advised issues straight-line windows, and WillNeed warms pages
// so later Gets hit the prefetch cache.
func TestMemoryAdviseSteersIssue(t *testing.T) {
	run := func(advise func(c *MemoryClient) error) MemoryStats {
		mem, err := Open(WithSeed(77), WithCacheCapacity(64), WithQueueDepth(8))
		if err != nil {
			t.Fatal(err)
		}
		defer mem.Close()
		c := mem.Client(1)
		buf := make([]byte, RemotePageSize)
		mem.SetRecording(false) // populate without counting its prefetches
		for pg := int64(0); pg < 512; pg++ {
			if _, err := c.WriteAt(buf, pg*RemotePageSize); err != nil {
				t.Fatal(err)
			}
		}
		mem.SetRecording(true)
		if advise != nil {
			if err := advise(c); err != nil {
				t.Fatal(err)
			}
		}
		for pg := PageID(0); pg < 512; pg += 2 { // stride-2 scan
			if _, err := c.Get(pg); err != nil {
				t.Fatal(err)
			}
		}
		return mem.Stats()
	}
	normal := run(nil)
	random := run(func(c *MemoryClient) error { return c.Advise(AdviseRandom, 0, 512) })
	seq := run(func(c *MemoryClient) error { return c.Advise(AdviseSequential, 0, 512) })
	if random.PrefetchIssued != 0 {
		t.Fatalf("random-advised scan still issued %d prefetches", random.PrefetchIssued)
	}
	if seq.PrefetchIssued == 0 {
		t.Fatal("sequential-advised scan issued no prefetches")
	}
	if normal.PrefetchIssued == 0 {
		t.Fatal("un-advised scan issued no prefetches (baseline lost its bite)")
	}

	// WillNeed warms the whole span up front: the scan then hits the
	// prefetch cache far more than the un-advised run.
	warm := run(func(c *MemoryClient) error { return c.Advise(AdviseWillNeed, 0, 512) })
	if warm.CacheHits <= normal.CacheHits {
		t.Fatalf("WillNeed did not warm the scan: %d cache hits vs %d un-advised",
			warm.CacheHits, normal.CacheHits)
	}
}

// BenchmarkMemoryEnsembleGetHit is the selector's zero-allocation gate on
// the resident-hit path: a hit never consults the prefetcher, so routing
// through the ensemble must add nothing — gated A/B by
// scripts/bench_ab.sh --zero-alloc, like the fixed-policy hit path.
func BenchmarkMemoryEnsembleGetHit(b *testing.B) {
	mem, err := Open(
		WithSeed(42), WithCacheCapacity(256), WithQueueDepth(8),
		WithEnsemble(EnsembleConfig{}),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer mem.Close()
	buf := make([]byte, RemotePageSize)
	const hot = 64 // well inside the budget: every Get below is a hit
	for pg := int64(0); pg < hot; pg++ {
		if _, err := mem.WriteAt(buf, pg*RemotePageSize); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := mem.Get(PageID(i % hot))
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}
