package leap

import "leap/internal/sim"

// newSeededRNG is a tiny indirection so the facade can seed device models
// without exporting the sim package.
func newSeededRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
